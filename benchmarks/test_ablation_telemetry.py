"""Ablation — the cost of observability.

``VmmConfig(telemetry=False)`` runs the seed's uninstrumented VMM hot
path; ``telemetry=True`` (the default) adds per-run counters, the
latency histogram, trace events and the quarantine consult.  This
benchmark quantifies that overhead on a full convergence run so the
number documented in EXPERIMENTS.md stays honest: metric handles are
bound at attach time, so the instrumented path should stay within a
small constant factor of the plain one.
"""

import statistics
import timeit

import pytest

from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator

ROUTES = 400
SEED = 20200604


def make_run(telemetry, provenance=False, profiling=False, timeseries_every=0):
    routes = RibGenerator(n_routes=ROUTES, seed=SEED).generate()

    def run():
        harness = ConvergenceHarness(
            "frr",
            "route_reflection",
            "extension",
            routes,
            engine="jit",
            telemetry=telemetry,
            provenance=provenance,
            profiling=profiling,
            timeseries_every=timeseries_every,
        )
        return harness.run()

    return run


@pytest.mark.parametrize("telemetry", [False, True], ids=["plain", "traced"])
def test_convergence_cost(benchmark, telemetry):
    run = make_run(telemetry)
    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_telemetry_overhead_is_bounded(benchmark):
    """Instrumented vs uninstrumented, interleaved to cancel drift."""
    plain = make_run(False)
    traced = make_run(True)
    plain_times, traced_times = [], []
    plain()
    traced()  # warm both arms (JIT translation, allocator)
    for _ in range(5):
        plain_times.append(min(timeit.repeat(plain, number=1, repeat=2)))
        traced_times.append(min(timeit.repeat(traced, number=1, repeat=2)))
    benchmark.pedantic(traced, rounds=3, iterations=1, warmup_rounds=1)
    plain_time = statistics.median(plain_times)
    traced_time = statistics.median(traced_times)
    overhead = traced_time / plain_time - 1.0
    print(
        f"\ntelemetry overhead: {overhead * 100:+.1f}% "
        f"(plain {plain_time * 1000:.1f} ms, traced {traced_time * 1000:.1f} ms, "
        f"{ROUTES} routes)"
    )
    # Generous bound: the documented figure is ~10-20%; anything past
    # 50% means the hot path regressed (e.g. registry lookups per run).
    assert overhead < 0.50


@pytest.mark.parametrize(
    "arm", ["telemetry-only", "provenance"], ids=["telemetry", "provenance"]
)
def test_provenance_arm_cost(benchmark, arm):
    run = make_run(True, provenance=(arm == "provenance"))
    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_provenance_off_keeps_fast_path(benchmark):
    """The flag itself must be free: a provenance-off harness runs the
    PR 2 pre-bound closures, byte-identical to never mentioning it."""
    routes = RibGenerator(n_routes=50, seed=SEED).generate()
    harness = ConvergenceHarness(
        "frr", "route_reflection", "extension", routes, provenance=False
    )
    assert harness.dut.provenance is None
    assert harness.dut.vmm._fast  # pre-bound closures still installed
    benchmark.pedantic(harness.run, rounds=1, iterations=1)


def test_provenance_overhead_measured(benchmark):
    """Provenance-on vs telemetry-only, interleaved to cancel drift.

    Provenance records every API call, extension outcome, decision
    elimination, RIB change and export per route — and disqualifies
    the fast path — so its overhead is expectedly much larger than
    bare telemetry's.  The printed figure feeds EXPERIMENTS.md; the
    bound only guards against pathological regressions (e.g. stories
    growing unbounded).
    """
    baseline = make_run(True, provenance=False)
    traced = make_run(True, provenance=True)
    baseline_times, traced_times = [], []
    baseline()
    traced()  # warm both arms (JIT translation, allocator)
    for _ in range(5):
        baseline_times.append(min(timeit.repeat(baseline, number=1, repeat=2)))
        traced_times.append(min(timeit.repeat(traced, number=1, repeat=2)))
    benchmark.pedantic(traced, rounds=3, iterations=1, warmup_rounds=1)
    baseline_time = statistics.median(baseline_times)
    traced_time = statistics.median(traced_times)
    overhead = traced_time / baseline_time - 1.0
    print(
        f"\nprovenance overhead: {overhead * 100:+.1f}% "
        f"(telemetry-only {baseline_time * 1000:.1f} ms, "
        f"provenance {traced_time * 1000:.1f} ms, {ROUTES} routes)"
    )
    assert overhead < 4.0


@pytest.mark.parametrize(
    "arm", ["telemetry-only", "profiling"], ids=["telemetry", "profiling"]
)
def test_profiling_arm_cost(benchmark, arm):
    run = make_run(True, profiling=(arm == "profiling"))
    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_profiling_off_keeps_fast_path(benchmark):
    """Like provenance, the profiling flag itself must be free: a
    profiling-off harness runs the PR 2 pre-bound closures,
    byte-identical to never mentioning it."""
    routes = RibGenerator(n_routes=50, seed=SEED).generate()
    harness = ConvergenceHarness(
        "frr", "route_reflection", "extension", routes, profiling=False
    )
    assert harness.dut.profiler is None
    assert harness.dut.vmm._fast  # pre-bound closures still installed
    benchmark.pedantic(harness.run, rounds=1, iterations=1)


def test_profiling_overhead_measured(benchmark):
    """Profiling-on vs telemetry-only, interleaved to cancel drift.

    Profiling times every phase, attributes wall clock to helpers,
    counts every executed PC (interp) or block (JIT) and disqualifies
    the fast path — so like provenance it is expected to cost real
    multiples of bare telemetry.  The printed figure feeds
    EXPERIMENTS.md; the bound only guards pathological regressions.
    """
    baseline = make_run(True, profiling=False)
    traced = make_run(True, profiling=True)
    baseline_times, traced_times = [], []
    baseline()
    traced()  # warm both arms (JIT translation, allocator)
    for _ in range(5):
        baseline_times.append(min(timeit.repeat(baseline, number=1, repeat=2)))
        traced_times.append(min(timeit.repeat(traced, number=1, repeat=2)))
    benchmark.pedantic(traced, rounds=3, iterations=1, warmup_rounds=1)
    baseline_time = statistics.median(baseline_times)
    traced_time = statistics.median(traced_times)
    overhead = traced_time / baseline_time - 1.0
    print(
        f"\nprofiling overhead: {overhead * 100:+.1f}% "
        f"(telemetry-only {baseline_time * 1000:.1f} ms, "
        f"profiling {traced_time * 1000:.1f} ms, {ROUTES} routes)"
    )
    assert overhead < 6.0


@pytest.mark.parametrize(
    "arm", ["telemetry-only", "sampled"], ids=["telemetry", "sampled"]
)
def test_timeseries_sampler_arm_cost(benchmark, arm):
    run = make_run(True, timeseries_every=(25 if arm == "sampled" else 0))
    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_timeseries_sampler_overhead_measured(benchmark):
    """Time-series sampling on vs telemetry-only, interleaved.

    Every 25 routes the sampler snapshots the whole registry into the
    bounded ring (16 samples across the 400-route run) — a full
    ``snapshot_registry`` walk each time, but off the per-route hot
    path.  The printed figure feeds the EXPERIMENTS.md ablation row;
    off (``timeseries_every=0``, the default) takes one integer
    comparison per run and allocates nothing.
    """
    baseline = make_run(True, timeseries_every=0)
    sampled = make_run(True, timeseries_every=25)
    baseline_times, sampled_times = [], []
    baseline()
    sampled()  # warm both arms (JIT translation, allocator)
    for _ in range(5):
        baseline_times.append(min(timeit.repeat(baseline, number=1, repeat=2)))
        sampled_times.append(min(timeit.repeat(sampled, number=1, repeat=2)))
    benchmark.pedantic(sampled, rounds=3, iterations=1, warmup_rounds=1)
    baseline_time = statistics.median(baseline_times)
    sampled_time = statistics.median(sampled_times)
    overhead = sampled_time / baseline_time - 1.0
    print(
        f"\ntimeseries sampler overhead: {overhead * 100:+.1f}% "
        f"(telemetry-only {baseline_time * 1000:.1f} ms, "
        f"sampled {sampled_time * 1000:.1f} ms, "
        f"{ROUTES} routes, every 25)"
    )
    # Sampling is registry-walk work every N routes, not per-route
    # work: anything past 50% means the sampler leaked onto the hot
    # path (e.g. snapshotting per update).
    assert overhead < 0.50


def test_record_route_reflection_scenario(benchmark, bench_recorder):
    """The continuous-tracking record for the ablation's headline
    scenario.  With ``--bench-record`` this writes
    ``BENCH_route-reflection-frr-jit.json``; without, it is just one
    more measured convergence run."""
    routes = RibGenerator(n_routes=ROUTES, seed=SEED).generate()

    def run():
        harness = ConvergenceHarness(
            "frr", "route_reflection", "extension", routes, engine="jit"
        )
        harness.run()
        return harness

    warm = run()  # warm (JIT translation, allocator)
    wall, harness = [], warm
    for _ in range(5):
        harness = ConvergenceHarness(
            "frr", "route_reflection", "extension", routes, engine="jit"
        )
        wall.append(harness.run())
    benchmark.pedantic(lambda: run() and None, rounds=1, iterations=1)
    snapshot = harness.telemetry_snapshot()
    series = snapshot["metrics"].get("xbgp_extension_instructions", {}).get("series", [])
    instructions = sum(int(s["value"]) for s in series)
    path = bench_recorder.record(
        "route-reflection-frr-jit",
        wall,
        ROUTES,
        instructions=instructions,
        extra={"implementation": "frr", "engine": "jit", "seed": SEED},
    )
    if path is not None:
        print(f"\nwrote {path}")
