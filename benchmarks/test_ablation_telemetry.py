"""Ablation — the cost of observability.

``VmmConfig(telemetry=False)`` runs the seed's uninstrumented VMM hot
path; ``telemetry=True`` (the default) adds per-run counters, the
latency histogram, trace events and the quarantine consult.  This
benchmark quantifies that overhead on a full convergence run so the
number documented in EXPERIMENTS.md stays honest: metric handles are
bound at attach time, so the instrumented path should stay within a
small constant factor of the plain one.
"""

import statistics
import timeit

import pytest

from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator

ROUTES = 400
SEED = 20200604


def make_run(telemetry):
    routes = RibGenerator(n_routes=ROUTES, seed=SEED).generate()

    def run():
        harness = ConvergenceHarness(
            "frr",
            "route_reflection",
            "extension",
            routes,
            engine="jit",
            telemetry=telemetry,
        )
        return harness.run()

    return run


@pytest.mark.parametrize("telemetry", [False, True], ids=["plain", "traced"])
def test_convergence_cost(benchmark, telemetry):
    run = make_run(telemetry)
    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_telemetry_overhead_is_bounded(benchmark):
    """Instrumented vs uninstrumented, interleaved to cancel drift."""
    plain = make_run(False)
    traced = make_run(True)
    plain_times, traced_times = [], []
    plain()
    traced()  # warm both arms (JIT translation, allocator)
    for _ in range(5):
        plain_times.append(min(timeit.repeat(plain, number=1, repeat=2)))
        traced_times.append(min(timeit.repeat(traced, number=1, repeat=2)))
    benchmark.pedantic(traced, rounds=3, iterations=1, warmup_rounds=1)
    plain_time = statistics.median(plain_times)
    traced_time = statistics.median(traced_times)
    overhead = traced_time / plain_time - 1.0
    print(
        f"\ntelemetry overhead: {overhead * 100:+.1f}% "
        f"(plain {plain_time * 1000:.1f} ms, traced {traced_time * 1000:.1f} ms, "
        f"{ROUTES} routes)"
    )
    # Generous bound: the documented figure is ~10-20%; anything past
    # 50% means the hot path regressed (e.g. registry lookups per run).
    assert overhead < 0.50
