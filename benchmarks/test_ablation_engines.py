"""Ablation — executing the instruction set: interpreter vs JIT.

The paper asks "how to implement this instruction set efficiently — so
as to minimize the overhead?".  On the Python substrate the answer is
the block-translating JIT (repro.ebpf.jit); this benchmark quantifies
the per-invocation gap on a fixed arithmetic bytecode, plus the cost of
``next()`` chains and verification.
"""

import timeit

import pytest

from repro.eval import ablation


@pytest.mark.parametrize("engine", ["interp", "jit"])
def test_engine_invocation_cost(benchmark, engine):
    run = ablation.engine_fn(engine)
    benchmark(run)


def test_jit_speedup_over_interpreter(benchmark):
    interp = ablation.engine_fn("interp")
    jitted = ablation.engine_fn("jit")
    assert interp() == jitted()
    interp_time = min(timeit.repeat(interp, number=50, repeat=3))
    jit_time = min(timeit.repeat(jitted, number=50, repeat=3))
    benchmark.pedantic(jitted, rounds=3, iterations=10, warmup_rounds=1)
    ratio = interp_time / jit_time
    print(f"\nJIT speedup over interpreter: {ratio:.1f}x")
    assert ratio > 2.0


@pytest.mark.parametrize("length", [0, 1, 2, 4, 8])
def test_next_chain_cost(benchmark, length):
    """Cost of an insertion point as the ``next()`` chain grows."""
    run = ablation.chain_fn(length)
    benchmark(run)
    assert run() == 0


def test_chain_cost_grows_linearly(benchmark):
    short = ablation.chain_fn(1)
    long = ablation.chain_fn(8)
    short_time = min(timeit.repeat(short, number=200, repeat=3))
    long_time = min(timeit.repeat(long, number=200, repeat=3))
    benchmark.pedantic(long, rounds=3, iterations=20, warmup_rounds=1)
    ratio = long_time / short_time
    print(f"\n8-deep chain / 1-deep chain = {ratio:.1f}x")
    assert 1.5 < ratio < 30.0


def test_verifier_cost(benchmark):
    """Verification is a load-time cost; confirm it's bounded."""
    run = ablation.verifier_fn(repeats=8)
    benchmark(run)
