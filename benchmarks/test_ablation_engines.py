"""Ablation — executing the instruction set: interp vs JIT vs native.

The paper asks "how to implement this instruction set efficiently — so
as to minimize the overhead?".  On the Python substrate the answer is
the tier ladder: the block-translating JIT (repro.ebpf.jit) and the
structured native compiler (repro.ebpf.native) above it; this benchmark
quantifies the per-invocation gap on a fixed arithmetic bytecode, plus
the cost of ``next()`` chains and verification.
"""

import timeit

import pytest

from repro.eval import ablation


@pytest.mark.parametrize("engine", ["interp", "jit", "native"])
def test_engine_invocation_cost(benchmark, engine):
    run = ablation.engine_fn(engine)
    benchmark(run)


def test_jit_speedup_over_interpreter(benchmark):
    interp = ablation.engine_fn("interp")
    jitted = ablation.engine_fn("jit")
    assert interp() == jitted()
    interp_time = min(timeit.repeat(interp, number=50, repeat=3))
    jit_time = min(timeit.repeat(jitted, number=50, repeat=3))
    benchmark.pedantic(jitted, rounds=3, iterations=10, warmup_rounds=1)
    ratio = interp_time / jit_time
    print(f"\nJIT speedup over interpreter: {ratio:.1f}x")
    assert ratio > 2.0


def test_native_speedup_over_interpreter(benchmark):
    """The ISSUE 7 floor: the native tier must clear 5× the interp
    cost per invocation on the loop-heavy arithmetic bytecode (the
    stretch goal is 10×; CI asserts only the floor against noise)."""
    interp = ablation.engine_fn("interp")
    compiled = ablation.engine_fn("native")
    assert interp() == compiled()
    interp_time = min(timeit.repeat(interp, number=50, repeat=3))
    native_time = min(timeit.repeat(compiled, number=50, repeat=3))
    benchmark.pedantic(compiled, rounds=3, iterations=10, warmup_rounds=1)
    ratio = interp_time / native_time
    print(f"\nnative speedup over interpreter: {ratio:.1f}x")
    assert ratio > 5.0


def test_native_not_slower_than_jit(benchmark):
    jitted = ablation.engine_fn("jit")
    compiled = ablation.engine_fn("native")
    assert jitted() == compiled()
    jit_time = min(timeit.repeat(jitted, number=100, repeat=3))
    native_time = min(timeit.repeat(compiled, number=100, repeat=3))
    benchmark.pedantic(compiled, rounds=3, iterations=10, warmup_rounds=1)
    ratio = jit_time / native_time
    print(f"\nnative speedup over JIT: {ratio:.2f}x")
    # Generous noise margin; the point is "never a regression tier".
    assert native_time < jit_time * 1.15


@pytest.mark.parametrize("length", [0, 1, 2, 4, 8])
def test_next_chain_cost(benchmark, length):
    """Cost of an insertion point as the ``next()`` chain grows."""
    run = ablation.chain_fn(length)
    benchmark(run)
    assert run() == 0


def test_chain_cost_grows_linearly(benchmark):
    short = ablation.chain_fn(1)
    long = ablation.chain_fn(8)
    short_time = min(timeit.repeat(short, number=200, repeat=3))
    long_time = min(timeit.repeat(long, number=200, repeat=3))
    benchmark.pedantic(long, rounds=3, iterations=20, warmup_rounds=1)
    ratio = long_time / short_time
    print(f"\n8-deep chain / 1-deep chain = {ratio:.1f}x")
    assert 1.5 < ratio < 30.0


def test_verifier_cost(benchmark):
    """Verification is a load-time cost; confirm it's bounded."""
    run = ablation.verifier_fn(repeats=8)
    benchmark(run)
