"""Fig. 5 / §3.3 — the data-center scenarios as an executable benchmark.

Measures full-fabric convergence for the three configurations and
checks the qualitative outcomes the paper argues for:

* ``same_as`` partitions under the L10–S1 + L13–S2 double failure;
* ``xbgp`` (valley-free program, unique AS numbers) keeps internal
  destinations reachable through the rescue valley while still
  blocking transit valleys.
"""

import pytest

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.sim.fabrics import build_clos

INTERNAL = Prefix.parse("192.168.13.0/24")
EXTERNAL = Prefix.parse("8.8.8.0/24")


def run_scenario(config):
    network = build_clos(config, implementation="mixed")
    transit = BirdDaemon(asn=65500, router_id="9.9.9.9")
    network.add_router("EXT", transit)
    network.connect("EXT", "10.30.0.1", "S1", "10.30.0.2")
    network.connect("EXT", "10.30.1.1", "S2", "10.30.1.2")
    network.establish_all()
    network.router("L13").originate(INTERNAL)
    transit.originate(EXTERNAL)
    network.run()
    network.fail_link("L10", "S1")
    network.fail_link("L13", "S2")
    network.fail_link("EXT", "S2")
    return {
        "internal_reachable": network.router("L10").loc_rib.lookup(INTERNAL) is not None,
        "transit_valley": network.router("S2").loc_rib.lookup(EXTERNAL) is not None,
        "events": network.scheduler.events_processed,
    }


@pytest.mark.parametrize("config", ["unique_as", "same_as", "xbgp"])
def test_fig5_scenario(benchmark, config):
    outcome = benchmark.pedantic(
        run_scenario, args=(config,), rounds=2, iterations=1, warmup_rounds=0
    )
    print(f"\n{config}: {outcome}")
    if config == "same_as":
        # The trick partitions the fabric (the paper's §3.3 complaint).
        assert not outcome["internal_reachable"]
    elif config == "unique_as":
        # No protection: reachable, but transit takes a valley.
        assert outcome["internal_reachable"]
        assert outcome["transit_valley"]
    else:  # xbgp
        assert outcome["internal_reachable"]
        assert not outcome["transit_valley"]
