"""Fig. 2 scenario as a benchmark — the GeoLoc program's cost.

The paper does not time GeoLoc, but it is the flagship example, so we
measure what the four-bytecode program (receive + import + export +
encode — the most insertion points of any use case) costs end-to-end
relative to a plain DUT, with both engines.
"""

import statistics

import pytest

from repro.plugins import geoloc
from repro.sim.harness import ConvergenceHarness


def run_once(routes, with_geoloc, engine="jit"):
    harness = ConvergenceHarness("bird", "plain", "native", routes, engine=engine)
    if with_geoloc:
        harness.dut.xtra["coord"] = geoloc.coord_bytes(50.85, 4.35)
        harness.dut.attach_manifest(geoloc.build_manifest(max_distance_km=50000))
    return harness


@pytest.mark.parametrize("engine", ["jit"])
def test_fig2_geoloc_overhead(benchmark, engine, fig4_routes, fig4_params):
    runs = max(3, fig4_params["runs"] // 2)
    plain, tagged = [], []
    for _ in range(runs):
        plain.append(run_once(fig4_routes, with_geoloc=False).run())
        tagged.append(run_once(fig4_routes, with_geoloc=True, engine=engine).run())
    base = statistics.median(plain)
    impact = (statistics.median(tagged) - base) / base * 100
    print(
        f"\nGeoLoc (4 bytecodes, {engine}): plain={base * 1000:.1f}ms "
        f"tagged={statistics.median(tagged) * 1000:.1f}ms impact={impact:+.1f}%"
    )
    benchmark.pedantic(
        lambda: run_once(fig4_routes, with_geoloc=True, engine=engine).run(),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    # Four insertion points with real bytecode: bounded overhead.
    assert impact < 400.0

    harness = run_once(fig4_routes, with_geoloc=True, engine=engine)
    harness.run()
    stats = harness.dut.vmm.stats()
    assert stats["geoloc_receive"]["errors"] == 0
    assert stats["geoloc_encode"]["executions"] > 0
