"""Ablation — the hot-path overhaul, pre vs post.

``hot_path=False`` replays a full update feed with the pre-overhaul
per-route costs restored: eager heap re-zeroing on every VM reset, the
general chain-walk dispatch (no single-code fast path), no marshalling
or encode caches, and eager per-message attribute parsing at the
downstream collector.  ``hot_path=True`` is the shipped
configuration.  The arms run the same workload through the same daemon
and differ only in those switches, so the ratio is the overhaul's
yield.

Knobs (environment variables):

* ``REPRO_HOTPATH_ROUTES``      — table size per replay (default 400);
* ``REPRO_HOTPATH_RUNS``        — interleaved measurement pairs per
  cell (default 5);
* ``REPRO_HOTPATH_MIN_SPEEDUP`` — asserted floor for the jit/native
  cells (default 1.25; CI smoke pins 1.0 to keep tiny runs noise-proof);
* ``REPRO_HOTPATH_TIER_MARGIN`` — noise margin for the native-vs-jit
  tier-ladder gate (default 1.15; CI pins looser);
* ``REPRO_HOTPATH_JSON``        — when set, a path that accumulates
  every cell's numbers for artifact upload.

The jit cells carry the assertion (bytecode execution dominates there,
which is what the overhaul targets); the pyext cells are reported for
context — native-Python extensions never touch the VM heap or the
fast-path dispatch, so their delta isolates the marshalling, encode
and message-decode caches alone.
"""

import gc
import json
import os
import statistics

import pytest

from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator

ROUTES = int(os.environ.get("REPRO_HOTPATH_ROUTES", "400"))
RUNS = int(os.environ.get("REPRO_HOTPATH_RUNS", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_HOTPATH_MIN_SPEEDUP", "1.25"))
TIER_MARGIN = float(os.environ.get("REPRO_HOTPATH_TIER_MARGIN", "1.15"))
JSON_PATH = os.environ.get("REPRO_HOTPATH_JSON")
SEED = 20200604


def replay(implementation, engine, hot_path, routes):
    """One replay; returns the elapsed seconds of the replay alone.

    A fresh harness is built per measurement, but the setup cost
    (manifest compile, JIT translation, feed encode) stays outside the
    timed quantity — ``ConvergenceHarness.run`` times first announce to
    convergence, which is the Fig. 4-style per-route cost the overhaul
    targets.
    """
    harness = ConvergenceHarness(
        implementation,
        "route_reflection",
        "extension",
        routes,
        engine=engine,
        hot_path=hot_path,
    )
    # Same gc policy as the Fig. 4 runner: collect before, disable
    # during the timed span, so the ratio compares compute rather than
    # whichever arm a collector pause happened to land in.
    gc.collect()
    gc.disable()
    try:
        return harness.run()
    finally:
        gc.enable()


def record_cell(cell, payload):
    if not JSON_PATH:
        return
    data = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            data = json.load(handle)
    data[cell] = payload
    with open(JSON_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


@pytest.mark.parametrize("implementation", ["frr", "bird"])
@pytest.mark.parametrize("engine", ["jit", "native", "pyext"])
def test_hotpath_speedup(benchmark, implementation, engine):
    """Legacy vs hot-path, interleaved to cancel machine drift."""
    routes = RibGenerator(n_routes=ROUTES, seed=SEED).generate()
    replay(implementation, engine, False, routes)
    replay(implementation, engine, True, routes)  # warm both arms
    legacy_times, hot_times = [], []
    for _ in range(RUNS):
        legacy_times.append(replay(implementation, engine, False, routes))
        hot_times.append(replay(implementation, engine, True, routes))
    benchmark.pedantic(
        lambda: replay(implementation, engine, True, routes),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )

    legacy_median = statistics.median(legacy_times)
    hot_median = statistics.median(hot_times)
    speedup = legacy_median / hot_median
    print(
        f"\nhot-path speedup [{implementation}/{engine}]: {speedup:.2f}x "
        f"(legacy {legacy_median * 1000:.1f} ms, hot {hot_median * 1000:.1f} ms, "
        f"{ROUTES} routes)"
    )
    record_cell(
        f"{implementation}/{engine}",
        {
            "routes": ROUTES,
            "runs": RUNS,
            "legacy_ms": round(legacy_median * 1000, 3),
            "hot_ms": round(hot_median * 1000, 3),
            "speedup": round(speedup, 3),
        },
    )
    if engine in ("jit", "native"):
        assert speedup >= MIN_SPEEDUP, (
            f"{implementation}/{engine} hot-path speedup {speedup:.2f}x "
            f"below the {MIN_SPEEDUP:.2f}x floor"
        )
    else:
        # pyext: glue-only savings; must at least not regress badly.
        assert speedup > 0.85


def test_engine_tier_comparison(benchmark):
    """Honest end-to-end tier ladder on one workload: interp, jit,
    native and pyext replay the same route-reflection feed.

    Host-side work (decode, RIB, encode) dominates end to end, so the
    native tier's edge over the JIT here is modest by design — the big
    ratios live in the per-invocation ablation (test_ablation_engines).
    The floors asserted are deliberately loose: native must clearly
    beat the interpreter and must not regress against the JIT.
    """
    routes = RibGenerator(n_routes=ROUTES, seed=SEED).generate()
    tiers = ("interp", "jit", "native", "pyext")
    for engine in tiers:
        replay("frr", engine, True, routes)  # warm every arm
    times = {engine: [] for engine in tiers}
    for _ in range(RUNS):
        for engine in tiers:
            times[engine].append(replay("frr", engine, True, routes))
    benchmark.pedantic(
        lambda: replay("frr", "native", True, routes),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    medians = {engine: statistics.median(times[engine]) for engine in tiers}
    for engine in tiers:
        rate = ROUTES / medians[engine]
        print(
            f"\ntier {engine:<7} {medians[engine] * 1000:8.1f} ms"
            f"  ({rate:,.0f} routes/s)"
        )
    record_cell(
        "frr/tier-ladder",
        {
            "routes": ROUTES,
            "runs": RUNS,
            **{
                f"{engine}_ms": round(medians[engine] * 1000, 3)
                for engine in tiers
            },
        },
    )
    assert medians["native"] < medians["interp"]
    assert medians["native"] < medians["jit"] * TIER_MARGIN


def test_hotpath_arms_converge_identically(benchmark):
    """Correctness gate for the ratios above: both arms must deliver
    the same prefixes downstream."""
    routes = RibGenerator(n_routes=min(ROUTES, 200), seed=SEED).generate()

    def both_arms():
        collected = {}
        for hot_path in (False, True):
            harness = ConvergenceHarness(
                "bird",
                "route_reflection",
                "extension",
                routes,
                hot_path=hot_path,
            )
            harness.run()
            collected[hot_path] = harness.collector.prefixes
        return collected

    collected = benchmark.pedantic(both_arms, rounds=1, iterations=1, warmup_rounds=0)
    assert collected[False] == collected[True]
    assert len(collected[True]) == len(routes)
