"""§2.1 code-size accounting: the xBGP glue each host needed.

Paper: 400 lines for BIRD, 589 for FRRouting — BIRD's flexible eattr
API absorbs most of the work, FRR needs per-call representation
conversion.  The claim carried here is the *asymmetry* (FRR > BIRD),
not the absolute C line counts.
"""

from repro.eval import loc_report


def test_glue_loc_asymmetry(benchmark):
    report = benchmark(loc_report.glue_report)
    print()
    print(loc_report.render_table())
    assert report["frr"] > report["bird"]
    assert report["bird"] > 0
