"""Shared fixtures for the benchmark suite.

Knobs (environment variables):

* ``REPRO_FIG4_ROUTES`` — table size fed through the DUT (default 2500;
  the paper used 724k routes on a C testbed — scale accordingly when
  you have the time budget);
* ``REPRO_FIG4_RUNS``  — measurement repetitions per arm (default 7;
  the paper used 15).

Continuous perf tracking: run with ``--bench-record [DIR]`` and the
scenario benchmarks additionally write schema'd ``BENCH_<scenario>.json``
records (median/p95 wall time, routes/sec, instruction counts, git SHA,
timestamp) into DIR (default: current directory).  Compare a later run
against a committed record with ``xbgp bench --compare``.
"""

import os
from datetime import datetime, timezone

import pytest

from repro.bgp.roa import make_roas_for_prefixes
from repro.workload import RibGenerator, origins_of

FIG4_ROUTES = int(os.environ.get("REPRO_FIG4_ROUTES", "2500"))
FIG4_RUNS = int(os.environ.get("REPRO_FIG4_RUNS", "7"))
SEED = 20200604


def pytest_addoption(parser):
    parser.addoption(
        "--bench-record",
        action="store",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="write BENCH_<scenario>.json perf records into DIR",
    )


class BenchRecorder:
    """Session-wide sink for benchmark records.

    Disabled (``record()`` is a no-op returning None) unless the run
    passed ``--bench-record``, so recording costs nothing by default.
    """

    def __init__(self, directory):
        self.directory = directory
        self.written = []

    @property
    def enabled(self):
        return self.directory is not None

    def record(self, scenario, wall_seconds, routes, instructions=0, extra=None):
        if not self.enabled:
            return None
        from repro.eval import bench

        record = bench.make_record(
            scenario,
            wall_seconds,
            routes,
            instructions=instructions,
            timestamp=datetime.now(timezone.utc).isoformat(),
            extra=extra,
        )
        path = bench.write_record(record, self.directory)
        self.written.append(path)
        return path


@pytest.fixture(scope="session")
def bench_recorder(request):
    recorder = BenchRecorder(request.config.getoption("--bench-record"))
    if recorder.enabled:
        os.makedirs(recorder.directory, exist_ok=True)
    return recorder


@pytest.fixture(scope="session")
def fig4_routes():
    return RibGenerator(n_routes=FIG4_ROUTES, seed=SEED).generate()


@pytest.fixture(scope="session")
def fig4_roas(fig4_routes):
    return make_roas_for_prefixes(origins_of(fig4_routes), valid_fraction=0.75, seed=SEED)


@pytest.fixture(scope="session")
def fig4_params():
    return {"routes": FIG4_ROUTES, "runs": FIG4_RUNS}
