"""Shared fixtures for the benchmark suite.

Knobs (environment variables):

* ``REPRO_FIG4_ROUTES`` — table size fed through the DUT (default 2500;
  the paper used 724k routes on a C testbed — scale accordingly when
  you have the time budget);
* ``REPRO_FIG4_RUNS``  — measurement repetitions per arm (default 7;
  the paper used 15).
"""

import os

import pytest

from repro.bgp.roa import make_roas_for_prefixes
from repro.workload import RibGenerator, origins_of

FIG4_ROUTES = int(os.environ.get("REPRO_FIG4_ROUTES", "2500"))
FIG4_RUNS = int(os.environ.get("REPRO_FIG4_RUNS", "7"))
SEED = 20200604


@pytest.fixture(scope="session")
def fig4_routes():
    return RibGenerator(n_routes=FIG4_ROUTES, seed=SEED).generate()


@pytest.fixture(scope="session")
def fig4_roas(fig4_routes):
    return make_roas_for_prefixes(origins_of(fig4_routes), valid_fraction=0.75, seed=SEED)


@pytest.fixture(scope="session")
def fig4_params():
    return {"routes": FIG4_ROUTES, "runs": FIG4_RUNS}
