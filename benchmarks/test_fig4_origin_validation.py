"""Fig. 4 (orange boxes) — origin validation: extension vs native.

Reproduces §3.4: same Fig. 3 testbed over eBGP sessions; the DUT loads
a ROA set marking 75 % of the injected prefixes valid and classifies
every route without discarding.  Native FRR browses a ROA *trie* per
check; native BIRD and the extension use a *hash table*.

Shape targets (paper):

* on BIRD, the extension performs similarly to native (both hash);
* on FRRouting, the extension is *faster* than native — the trie
  browse loses to hash probes.  The ``pyext`` arm carries this
  crossover; the ``jit`` arm adds the Python bytecode-interpretation
  tax on top (see EXPERIMENTS.md for the decomposition).
"""

import pytest

from repro.core.insertion_points import InsertionPoint
from repro.eval import fig4
from repro.plugins import origin_validation
from repro.sim.harness import ConvergenceHarness


@pytest.mark.parametrize("implementation", ["frr", "bird"])
@pytest.mark.parametrize("engine", ["pyext", "jit"])
def test_fig4_origin_validation(
    benchmark, implementation, engine, fig4_routes, fig4_roas, fig4_params, bench_recorder
):
    result = fig4.run_cell(
        implementation,
        "origin_validation",
        fig4_routes,
        roas=fig4_roas,
        runs=fig4_params["runs"],
        engine=engine,
    )
    stats = result.stats()
    print()
    print(fig4.render_table([result], fig4_params["routes"], fig4_params["runs"]))

    benchmark.pedantic(
        lambda: ConvergenceHarness(
            implementation,
            "origin_validation",
            "extension",
            fig4_routes,
            fig4_roas,
            engine=engine,
        ).run(),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )

    if bench_recorder.enabled:
        wall = [
            ConvergenceHarness(
                implementation,
                "origin_validation",
                "extension",
                fig4_routes,
                fig4_roas,
                engine=engine,
            ).run()
            for _ in range(3)
        ]
        bench_recorder.record(
            f"origin-validation-{implementation}-{engine}",
            wall,
            fig4_params["routes"],
            extra={"implementation": implementation, "engine": engine},
        )

    if engine == "pyext":
        if implementation == "frr":
            # The paper's surprise: hash-based extension beats the
            # native trie browse.  Tolerate noise but require the
            # extension to at least not lose.
            assert stats["median"] < 10.0
        else:
            # "similar performance as BIRD's native code".
            assert -25.0 < stats["median"] < 25.0
    else:
        assert stats["median"] < 300.0  # bounded interpretation tax


def test_validation_counters_native_vs_extension(benchmark, fig4_routes, fig4_roas):
    """Correctness gate: both arms classify identically (75% valid)."""

    def run_both():
        native = ConvergenceHarness("frr", "origin_validation", "native", fig4_routes, fig4_roas)
        native.run()
        extension = ConvergenceHarness(
            "frr", "origin_validation", "extension", fig4_routes, fig4_roas
        )
        extension.run()
        chain = extension.dut.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
        return dict(native.dut.validity_counters), origin_validation.read_validity_counters(
            chain[0].state
        )

    native_counts, extension_counts = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert native_counts == extension_counts
    total = sum(extension_counts.values())
    assert 0.70 < extension_counts["VALID"] / total < 0.80
