"""Property-based tests: the prefix trie against a brute-force model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie

prefixes = st.builds(
    Prefix,
    network=st.integers(min_value=0, max_value=0xFFFFFFFF),
    length=st.integers(min_value=0, max_value=32),
)

prefix_maps = st.dictionaries(prefixes, st.integers(), max_size=30)


def build(entries):
    trie = PrefixTrie()
    for prefix, value in entries.items():
        trie.insert(prefix, value)
    return trie


class TestAgainstModel:
    @given(prefix_maps)
    def test_exact_lookup(self, entries):
        trie = build(entries)
        assert len(trie) == len(entries)
        for prefix, value in entries.items():
            assert trie.get(prefix) == value

    @given(prefix_maps, prefixes)
    def test_longest_match(self, entries, query):
        trie = build(entries)
        covering = [p for p in entries if p.contains(query)]
        result = trie.longest_match(query)
        if not covering:
            assert result is None
        else:
            best = max(covering, key=lambda p: p.length)
            assert result == (best, entries[best])

    @given(prefix_maps, prefixes)
    def test_covering_set(self, entries, query):
        trie = build(entries)
        expected = {p for p in entries if p.contains(query)}
        assert {p for p, _ in trie.covering(query)} == expected

    @given(prefix_maps, prefixes)
    def test_covered_set(self, entries, query):
        trie = build(entries)
        expected = {p for p in entries if query.contains(p)}
        assert {p for p, _ in trie.covered(query)} == expected

    @given(prefix_maps)
    def test_items_complete(self, entries):
        trie = build(entries)
        assert dict(trie.items()) == entries

    @given(prefix_maps, st.data())
    def test_remove_restores_model(self, entries, data):
        if not entries:
            return
        trie = build(entries)
        victim = data.draw(st.sampled_from(sorted(entries)))
        assert trie.remove(victim) == entries[victim]
        remaining = {p: v for p, v in entries.items() if p != victim}
        assert dict(trie.items()) == remaining
