"""Property-based tests: wire codecs round-trip for arbitrary inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.aspath import AsPath, AsPathSegment
from repro.bgp.attributes import (
    PathAttribute,
    decode_attributes,
    encode_attributes,
)
from repro.bgp.communities import (
    LargeCommunity,
    decode_communities,
    decode_large_communities,
    encode_communities,
    encode_large_communities,
)
from repro.bgp.constants import AsPathSegmentType
from repro.bgp.messages import NotificationMessage, OpenMessage, UpdateMessage, decode_message
from repro.bgp.prefix import Prefix

# -- strategies ---------------------------------------------------------

prefixes = st.builds(
    Prefix,
    network=st.integers(min_value=0, max_value=0xFFFFFFFF),
    length=st.integers(min_value=0, max_value=32),
)

asns = st.integers(min_value=0, max_value=0xFFFFFFFF)

segments = st.builds(
    AsPathSegment,
    kind=st.sampled_from(
        [AsPathSegmentType.AS_SEQUENCE, AsPathSegmentType.AS_SET]
    ),
    asns=st.lists(asns, min_size=1, max_size=10),
)

as_paths = st.builds(AsPath, st.lists(segments, max_size=4))

# Attribute flags: optional/transitive/partial combinations (extended
# length is an encoding artifact and normalized away by the decoder).
flags = st.sampled_from([0x40, 0x80, 0xC0, 0xE0])

attributes = st.builds(
    PathAttribute,
    flags=flags,
    type_code=st.integers(min_value=1, max_value=255),
    value=st.binary(max_size=300),
)


class TestPrefixProps:
    @given(prefixes)
    def test_wire_roundtrip(self, prefix):
        decoded, consumed = Prefix.decode(prefix.encode())
        assert decoded == prefix
        assert consumed == 1 + (prefix.length + 7) // 8

    @given(prefixes, prefixes)
    def test_contains_antisymmetry(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(prefixes, prefixes, prefixes)
    def test_contains_transitivity(self, a, b, c):
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @given(prefixes, st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_contains_address_consistent(self, prefix, address):
        host = Prefix(address, 32)
        assert prefix.contains(host) == prefix.contains_address(address)


class TestAsPathProps:
    @given(as_paths)
    def test_wire_roundtrip(self, path):
        assert AsPath.decode(path.encode()) == path

    @given(as_paths, asns)
    def test_prepend_grows_by_one(self, path, asn):
        grown = path.prepend(asn)
        assert grown.length() == path.length() + 1
        assert grown.first_asn() == asn

    @given(as_paths)
    def test_length_counts_sets_once(self, path):
        expected = sum(
            1 if seg.kind == AsPathSegmentType.AS_SET else len(seg.asns)
            for seg in path.segments
        )
        assert path.length() == expected


class TestCommunityProps:
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=20))
    def test_roundtrip_as_set(self, values):
        assert decode_communities(encode_communities(values)) == frozenset(values)

    @given(
        st.lists(
            st.builds(
                LargeCommunity,
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=0, max_value=0xFFFFFFFF),
            ),
            max_size=10,
        )
    )
    def test_large_roundtrip(self, values):
        assert decode_large_communities(encode_large_communities(values)) == frozenset(
            values
        )


class TestAttributeProps:
    @given(st.lists(attributes, max_size=8, unique_by=lambda a: a.type_code))
    def test_block_roundtrip(self, attrs):
        decoded = decode_attributes(encode_attributes(attrs))
        assert sorted(decoded, key=lambda a: a.type_code) == sorted(
            attrs, key=lambda a: a.type_code
        )


class TestMessageProps:
    @settings(max_examples=50)
    @given(
        withdrawn=st.lists(prefixes, max_size=10),
        attrs=st.lists(attributes, max_size=5, unique_by=lambda a: a.type_code),
        nlri=st.lists(prefixes, max_size=10),
    )
    def test_update_roundtrip(self, withdrawn, attrs, nlri):
        message = UpdateMessage(withdrawn=withdrawn, attributes=attrs, nlri=nlri)
        decoded, _ = decode_message(message.encode())
        assert decoded.withdrawn == tuple(withdrawn)
        assert decoded.nlri == tuple(nlri)
        assert sorted(decoded.attributes, key=lambda a: a.type_code) == sorted(
            attrs, key=lambda a: a.type_code
        )

    @given(
        asn=st.integers(min_value=0, max_value=0xFFFF),
        hold=st.integers(min_value=3, max_value=0xFFFF),
        router_id=st.integers(min_value=1, max_value=0xFFFFFFFE),
    )
    def test_open_roundtrip(self, asn, hold, router_id):
        decoded, _ = decode_message(OpenMessage(asn, hold, router_id).encode())
        assert (decoded.asn, decoded.hold_time, decoded.router_id) == (
            asn,
            hold,
            router_id,
        )

    @given(
        code=st.integers(min_value=1, max_value=6),
        subcode=st.integers(min_value=0, max_value=255),
        data=st.binary(max_size=64),
    )
    def test_notification_roundtrip(self, code, subcode, data):
        decoded, _ = decode_message(NotificationMessage(code, subcode, data).encode())
        assert (decoded.code, decoded.subcode, decoded.data) == (code, subcode, data)
