"""Property-based tests: xc programs against a Python reference model.

Random programs exercising the full statement surface (for/while,
compound assignment, array indexing, folding) must compute exactly
what equivalent Python computes, under both execution engines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import VirtualMachine
from repro.xc import compile_source

_M64 = (1 << 64) - 1


def run_both(source, **regs):
    program = compile_source(source)
    results = set()
    for jit in (False, True):
        vm = VirtualMachine(program, jit=jit, trusted_layout=jit)
        results.add(vm.run(**regs))
    assert len(results) == 1, "engines disagree"
    return results.pop()


class TestForLoops:
    @settings(max_examples=40, deadline=None)
    @given(
        start=st.integers(0, 50),
        stop=st.integers(0, 80),
        stride=st.integers(1, 7),
    )
    def test_sum_with_stride(self, start, stop, stride):
        source = f"""
        u64 f() {{
            u64 total = 0;
            for (u64 i = {start}; i < {stop}; i += {stride}) {{
                total += i;
            }}
            return total;
        }}
        """
        assert run_both(source) == sum(range(start, stop, stride)) & _M64

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(0, 255), min_size=1, max_size=12))
    def test_array_reverse(self, values):
        count = len(values)
        stores = "".join(f"data[{i}] = {v};\n" for i, v in enumerate(values))
        source = f"""
        u64 f(u64 pick) {{
            u8 data[{count}];
            u8 flipped[{count}];
            {stores}
            for (u64 i = 0; i < {count}; i += 1) {{
                flipped[{count - 1} - i] = data[i];
            }}
            return flipped[pick];
        }}
        """
        for pick in range(count):
            assert run_both(source, r1=pick) == list(reversed(values))[pick]


class TestCompoundOps:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(1, 2**31),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["+=", "-=", "*=", "|=", "&=", "^=", "<<=", ">>="]),
                st.integers(1, 2**16),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    def test_sequence_matches_python(self, seed, ops):
        body = "".join(f"x {op} {value};\n" for op, value in ops)
        source = f"u64 f() {{ u64 x = {seed}; {body} return x; }}"
        expected = seed
        for op, value in ops:
            if op == "+=":
                expected = (expected + value) & _M64
            elif op == "-=":
                expected = (expected - value) & _M64
            elif op == "*=":
                expected = (expected * value) & _M64
            elif op == "|=":
                expected |= value
            elif op == "&=":
                expected &= value
            elif op == "^=":
                expected ^= value
            elif op == "<<=":
                expected = (expected << (value % 64)) & _M64
            elif op == ">>=":
                expected >>= value % 64
        assert run_both(source) == expected


class TestFoldingSoundness:
    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(0, 2**31),
        b=st.integers(0, 2**31),
        c=st.integers(1, 2**16),
    )
    def test_constant_expressions(self, a, b, c):
        # Entirely constant: the folder computes it at compile time.
        source = f"u64 f() {{ return ({a} + {b}) * 3 / {c} + ({a} ^ {b}) % {c}; }}"
        expected = (((a + b) * 3 & _M64) // c + ((a ^ b) % c)) & _M64
        assert run_both(source) == expected
