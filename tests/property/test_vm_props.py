"""Property-based tests on the eBPF toolchain.

Key invariants:

* the JIT translator computes exactly what the interpreter computes,
  for arbitrary (verified) arithmetic programs;
* assemble/disassemble round-trips;
* xc-compiled arithmetic agrees with Python's own evaluation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.assembler import assemble
from repro.ebpf.disassembler import disassemble
from repro.ebpf.verifier import VerifierConfig, verify
from repro.ebpf.vm import VirtualMachine
from repro.xc import compile_source

_M64 = (1 << 64) - 1

# -- random straight-line ALU programs ----------------------------------

_ALU_OPS = ["add", "sub", "mul", "div", "or", "and", "xor", "lsh", "rsh", "arsh", "mod"]


@st.composite
def alu_programs(draw):
    """A straight-line program over r0-r5 ending in exit."""
    lines = []
    for reg in range(6):
        lines.append(f"mov r{reg}, {draw(st.integers(-2**31, 2**31 - 1))}")
    for _ in range(draw(st.integers(1, 25))):
        op = draw(st.sampled_from(_ALU_OPS))
        suffix = draw(st.sampled_from(["", "32"]))
        dst = draw(st.integers(0, 5))
        if draw(st.booleans()):
            operand = f"r{draw(st.integers(0, 5))}"
        else:
            value = draw(st.integers(-2**31, 2**31 - 1))
            if op in ("div", "mod") and value == 0:
                value = 1  # constant zero divisors are verifier-rejected
            if op in ("lsh", "rsh", "arsh"):
                value = draw(st.integers(0, 63))
            operand = str(value)
        lines.append(f"{op}{suffix} r{dst}, {operand}")
    lines.append("mov r0, r0")
    lines.append("exit")
    return "\n".join(lines)


class TestJitInterpreterEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(alu_programs())
    def test_alu_agreement(self, source):
        program = assemble(source)
        verify(program, VerifierConfig())
        interp = VirtualMachine(program).run()
        jitted = VirtualMachine(program, jit=True).run()
        assert interp == jitted

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 2**63), min_size=1, max_size=6),
        st.integers(0, 2**31 - 1),
    )
    def test_memory_and_branches(self, values, pivot):
        # Store values on the stack, sum those above the pivot.
        lines = []
        for index, value in enumerate(values):
            lines.append(f"lddw r1, {value}")
            lines.append(f"stxdw [r10-{8 * (index + 1)}], r1")
        lines.append("mov r0, 0")
        for index in range(len(values)):
            lines.append(f"ldxdw r2, [r10-{8 * (index + 1)}]")
            lines.append(f"jle r2, {pivot}, skip{index}")
            lines.append("add r0, r2")
            lines.append(f"skip{index}:")
            lines.append("mov r3, 0")
        lines.append("exit")
        program = assemble("\n".join(lines))
        verify(program, VerifierConfig())
        interp = VirtualMachine(program).run()
        jitted = VirtualMachine(program, jit=True).run()
        expected = sum(v for v in values if v > pivot) & _M64
        assert interp == jitted == expected


class TestRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(alu_programs())
    def test_disassemble_assemble(self, source):
        program = assemble(source)
        assert assemble(disassemble(program)) == program


class TestXcArithmetic:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(0, 2**32),
        b=st.integers(1, 2**16),
        c=st.integers(0, 2**16),
    )
    def test_expression_matches_python(self, a, b, c):
        source = f"""
        u64 f() {{
            u64 a = {a};
            u64 b = {b};
            u64 c = {c};
            return (a + b * c) % (b + 1) + (a / b) + (a ^ c) + (c << 3) + (a >> 5);
        }}
        """
        expected = ((a + b * c) % (b + 1) + (a // b) + (a ^ c) + (c << 3) + (a >> 5)) & _M64
        program = compile_source(source)
        for jit in (False, True):
            vm = VirtualMachine(program, jit=jit, trusted_layout=jit)
            assert vm.run() == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    def test_loop_sum_matches_python(self, values):
        stores = "".join(
            f"*(u8 *)(buf + {i}) = {v};\n" for i, v in enumerate(values)
        )
        source = f"""
        u64 f() {{
            u8 buf[16];
            {stores}
            u64 total = 0;
            u64 i = 0;
            while (i < {len(values)}) {{
                total = total + *(u8 *)(buf + i);
                i = i + 1;
            }}
            return total;
        }}
        """
        program = compile_source(source)
        for jit in (False, True):
            vm = VirtualMachine(program, jit=jit, trusted_layout=jit)
            assert vm.run() == sum(values)
