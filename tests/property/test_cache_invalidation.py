"""Property tests: the hot-path marshalling caches invalidate correctly.

The fast path memoises marshalled helper structs in three places —
``Neighbor._packed_info`` (peer_info), FRR's per-``FrrAttrs``
``_packed_cache`` / ``_write_cache``, and BIRD's per-``Eattr``
``_packed`` memo plus the ``EattrList`` write/identity caches.  Each
cache is only sound if any mutation of the underlying object produces
fresh bytes; these tests mutate after a pack and assert the
re-marshalled bytes change (and match an uncached pack).
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import PathAttribute
from repro.bgp.constants import AttrTypeCode
from repro.bgp.peer import Neighbor
from repro.bird.eattrs import Eattr, EattrList
from repro.core.abi import pack_attr, pack_peer_info
from repro.frr.attrs_intern import AttrPool, FrrAttrs

# -- strategies ---------------------------------------------------------

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
asns = st.integers(min_value=1, max_value=0xFFFFFFFF)
attr_values = st.binary(min_size=4, max_size=4)

# Fields of Neighbor that pack_peer_info marshals into the peer struct.
_PACKED_FIELDS = (
    "peer_asn",
    "local_asn",
    "peer_address",
    "local_address",
    "peer_router_id",
    "local_router_id",
    "rr_client",
    "cluster_id",
)


def _neighbor(peer_asn, local_asn, peer_addr, local_addr):
    return Neighbor(
        peer_address=peer_addr or 1,
        peer_asn=peer_asn,
        local_address=local_addr or 2,
        local_asn=local_asn,
        peer_router_id=peer_addr or 1,
        local_router_id=local_addr or 2,
    )


# -- Neighbor / pack_peer_info ------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    peer_asn=asns,
    local_asn=asns,
    peer_addr=u32,
    local_addr=u32,
    field=st.sampled_from(_PACKED_FIELDS),
    delta=st.integers(min_value=1, max_value=0xFFFF),
)
def test_neighbor_mutation_invalidates_packed_info(
    peer_asn, local_asn, peer_addr, local_addr, field, delta
):
    neighbor = _neighbor(peer_asn, local_asn, peer_addr, local_addr)
    packed = pack_peer_info(neighbor)
    # The memo is filled and a second cached pack returns identical bytes.
    assert neighbor._packed_info == packed
    assert pack_peer_info(neighbor) == packed
    assert pack_peer_info(neighbor, cached=False) == packed

    old = getattr(neighbor, field)
    if field == "rr_client":
        new = not old
    else:
        new = (old + delta) & 0xFFFFFFFF
        if new == old:
            new = (old + 1) & 0xFFFFFFFF
    setattr(neighbor, field, new)

    # __setattr__ dropped the memo, and the repack (cached or not)
    # reflects the new field value.
    assert neighbor._packed_info is None
    repacked = pack_peer_info(neighbor)
    assert repacked == pack_peer_info(neighbor, cached=False)
    assert repacked != packed


@settings(max_examples=25, deadline=None)
@given(peer_asn=asns, local_asn=asns)
def test_neighbor_stale_cache_would_diverge(peer_asn, local_asn):
    # The fast/legacy split the host oracle compares: cached=True serves
    # the memo, cached=False repacks.  After a mutation they must agree —
    # i.e. a cache that survived the write would be observable.
    neighbor = _neighbor(peer_asn, local_asn, 0x0A000102, 0x0A000101)
    stale = pack_peer_info(neighbor)
    neighbor.rr_client = True
    neighbor.cluster_id = 0xC1C1C1C1
    assert pack_peer_info(neighbor, cached=True) == pack_peer_info(
        neighbor, cached=False
    )
    assert pack_peer_info(neighbor) != stale


# -- FRR: FrrAttrs interning + per-set packed/write caches ---------------


def _frr_attrs(med: int) -> FrrAttrs:
    return FrrAttrs.from_wire(
        [
            PathAttribute(0x40, int(AttrTypeCode.ORIGIN), b"\x00"),
            PathAttribute(
                0x80, int(AttrTypeCode.MULTI_EXIT_DISC), struct.pack("!I", med)
            ),
        ]
    )


def _glue_pack(attrs: FrrAttrs, code: int) -> bytes:
    """Mirror of FrrHost.get_attr_packed's hot-path memoisation."""
    cached = attrs._packed_cache.get(code)
    if cached is not None:
        return cached
    attribute = attrs.attr_to_wire(code)
    assert attribute is not None
    packed = pack_attr(attribute.type_code, attribute.flags, attribute.value)
    attrs._packed_cache[code] = packed
    return packed


@settings(max_examples=50, deadline=None)
@given(med=u32, new_med=u32)
def test_frr_attr_write_yields_fresh_packed_bytes(med, new_med):
    if new_med == med:
        new_med = (med + 1) & 0xFFFFFFFF
    code = int(AttrTypeCode.MULTI_EXIT_DISC)
    attrs = _frr_attrs(med)
    packed = _glue_pack(attrs, code)
    assert attrs._packed_cache[code] == packed

    # FrrAttrs are immutable: a write goes through with_attr_wire and
    # must produce a *new* object with *empty* caches, never mutate the
    # shared (interned) one in place.
    written = attrs.with_attr_wire(code, 0x80, struct.pack("!I", new_med))
    assert written is not attrs
    assert written._packed_cache == {}
    assert attrs._packed_cache[code] == packed  # original memo untouched
    repacked = _glue_pack(written, code)
    assert repacked != packed
    assert repacked == pack_attr(code, 0x80, struct.pack("!I", new_med))


@settings(max_examples=25, deadline=None)
@given(med=u32, new_med=u32)
def test_frr_write_cache_matches_uncached_write(med, new_med):
    # Mirror of FrrHost.set_attr's hot path: the memoised interned
    # result for (code, flags, value) must equal a from-scratch rebuild.
    code = int(AttrTypeCode.MULTI_EXIT_DISC)
    pool = AttrPool()
    attrs = pool.intern(_frr_attrs(med))
    value = struct.pack("!I", new_med)

    interned = pool.intern(attrs.with_attr_wire(code, 0x80, value))
    attrs._write_cache[(code, 0x80, value)] = interned
    rebuilt = attrs.with_attr_wire(code, 0x80, value)
    assert attrs._write_cache[(code, 0x80, value)] == rebuilt
    # Interning the rebuild returns the cached object itself.
    assert pool.intern(rebuilt) is interned


# -- BIRD: Eattr._packed memo + EattrList write/identity caches ----------


@settings(max_examples=50, deadline=None)
@given(data=attr_values, new_data=attr_values, code=st.integers(16, 200))
def test_bird_ea_set_replaces_packed_memo(data, new_data, code):
    if new_data == data:
        new_data = bytes([data[0] ^ 1]) + data[1:]
    eattrs = EattrList.from_wire([PathAttribute(0xC0, code, data)])
    eattr = eattrs.ea_find(code)
    # Mirror of BirdHost.get_attr_packed's memo.
    eattr._packed = pack_attr(eattr.code, eattr.flags, eattr.data)
    stale = eattr._packed

    eattrs.ea_set(code, 0xC0, new_data)
    fresh = eattrs.ea_find(code)
    # ea_set replaces the whole Eattr, so the memo starts empty and the
    # re-marshalled bytes reflect the new data.
    assert fresh is not eattr
    assert fresh._packed is None
    repacked = pack_attr(fresh.code, fresh.flags, fresh.data)
    assert repacked != stale
    assert repacked == pack_attr(code, 0xC0, new_data)


@settings(max_examples=50, deadline=None)
@given(data=attr_values, new_data=attr_values, code=st.integers(16, 200))
def test_bird_ea_set_invalidates_list_caches(data, new_data, code):
    eattrs = EattrList.from_wire([PathAttribute(0xC0, code, data)])
    key = eattrs.cache_key()
    eattrs._write_cache[(code, 0xC0, new_data)] = eattrs.copy()

    eattrs.ea_set(code, 0xC0, new_data)
    # Identity and write-template caches are only valid for the old
    # content; both must be dropped by the in-place write.
    assert eattrs._write_cache == {}
    new_key = eattrs.cache_key()
    assert new_key == tuple((e.code, e.flags, e.data) for e in eattrs)
    if new_data != data:
        assert new_key != key


@settings(max_examples=25, deadline=None)
@given(data=attr_values, new_data=attr_values)
def test_bird_copy_shares_then_diverges(data, new_data):
    # copy() shares the identity/write caches (same content), but a
    # subsequent write on the copy swaps in fresh dicts instead of
    # clearing the shared ones — the original's caches stay valid.
    code = int(AttrTypeCode.MULTI_EXIT_DISC)
    base = EattrList.from_wire([PathAttribute(0x80, code, data)])
    base_key = base.cache_key()
    clone = base.copy()
    assert clone.cache_key() == base_key
    assert clone._write_cache is base._write_cache

    clone.ea_set(code, 0x80, new_data)
    assert base.cache_key() == base_key
    assert clone._write_cache is not base._write_cache
    assert base.ea_find(code).data == data


def test_eattr_equality_ignores_packed_memo():
    a = Eattr(32, 0xC0, b"\x01\x02\x03\x04")
    b = Eattr(32, 0xC0, b"\x01\x02\x03\x04")
    a._packed = pack_attr(a.code, a.flags, a.data)
    assert a == b and hash(a) == hash(b)
