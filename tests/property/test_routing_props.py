"""Property-based tests on routing invariants.

* the decision process is a total, order-independent choice;
* trie-backed and hash-backed ROA validation always agree;
* the two hosts converge to identical Loc-RIBs for any generated
  update stream (the vendor-neutrality invariant).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import (
    make_as_path,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
)
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.decision import best_route, compare_routes, DecisionConfig, rank_routes
from repro.bgp.messages import UpdateMessage
from repro.bgp.peer import Neighbor
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bgp.roa import HashRoaTable, Roa, TrieRoaTable
from repro.bird import BirdDaemon
from repro.bird.eattrs import EattrList
from repro.bird.rib import BirdRoute
from repro.frr import FrrDaemon

PREFIX = Prefix.parse("10.0.0.0/8")


@st.composite
def candidate_routes(draw):
    count = draw(st.integers(2, 6))
    routes = []
    for index in range(count):
        peer = Neighbor.build(
            f"10.0.1.{index + 1}",
            draw(st.sampled_from([65001, 65100, 65200])),
            "10.0.1.254",
            65001,
        )
        attrs = [
            make_origin(draw(st.sampled_from(list(Origin)))),
            make_as_path(
                AsPath.from_sequence(
                    draw(st.lists(st.integers(1, 70000), min_size=1, max_size=5))
                )
            ),
            make_next_hop(draw(st.integers(1, 0xFFFFFF))),
            make_local_pref(draw(st.integers(0, 300))),
            make_med(draw(st.integers(0, 100))),
        ]
        routes.append(BirdRoute(PREFIX, peer, EattrList.from_wire(attrs)))
    return routes


class TestDecisionProps:
    @settings(max_examples=80, deadline=None)
    @given(candidate_routes(), st.randoms())
    def test_order_independent(self, routes, rng):
        reference = best_route(routes)
        shuffled = list(routes)
        rng.shuffle(shuffled)
        assert best_route(shuffled) is reference

    @settings(max_examples=60, deadline=None)
    @given(candidate_routes())
    def test_rank_head_is_best(self, routes):
        ranked = rank_routes(routes)
        assert ranked[0] is best_route(routes)
        # Ranking is consistent with pairwise comparison.
        config = DecisionConfig()
        for earlier, later in zip(ranked, ranked[1:]):
            assert compare_routes(earlier, later, config) <= 0


roas_strategy = st.lists(
    st.builds(
        lambda net, length, asn, extra: Roa(
            Prefix(net, length), asn, max_length=min(32, length + extra)
        ),
        net=st.integers(0, 0xFFFFFFFF),
        length=st.integers(8, 24),
        asn=st.integers(1, 70000),
        extra=st.integers(0, 8),
    ),
    max_size=25,
)


class TestRoaEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        roas_strategy,
        st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFFFF),
                st.integers(8, 32),
                st.integers(1, 70000),
            ),
            max_size=20,
        ),
    )
    def test_trie_equals_hash(self, roas, checks):
        trie, hashed = TrieRoaTable(), HashRoaTable()
        trie.extend(roas)
        hashed.extend(roas)
        for network, length, asn in checks:
            prefix = Prefix(network, length)
            assert trie.validate(prefix, asn) == hashed.validate(prefix, asn)


@st.composite
def update_streams(draw):
    """A short random sequence of announcements and withdrawals."""
    prefix_pool = [Prefix(draw(st.integers(0, 0xFFFFFF)) << 8, 24) for _ in range(6)]
    events = []
    for _ in range(draw(st.integers(1, 12))):
        prefix = draw(st.sampled_from(prefix_pool))
        if draw(st.booleans()):
            attrs = [
                make_origin(draw(st.sampled_from(list(Origin)))),
                make_as_path(
                    AsPath.from_sequence(
                        [65100] + draw(st.lists(st.integers(1, 70000), max_size=3))
                    )
                ),
                make_next_hop(parse_ipv4("10.0.0.9")),
            ]
            events.append(UpdateMessage(attributes=attrs, nlri=[prefix]))
        else:
            events.append(UpdateMessage(withdrawn=[prefix]))
    return events


class TestCrossHostConvergence:
    @settings(max_examples=40, deadline=None)
    @given(update_streams())
    def test_identical_loc_ribs(self, stream):
        states = []
        for cls in (FrrDaemon, BirdDaemon):
            daemon = cls(asn=65001, router_id="1.1.1.1")
            daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
            daemon._established[parse_ipv4("10.0.0.9")] = True
            for update in stream:
                daemon.receive_message("10.0.0.9", update)
            states.append(
                {
                    prefix: [(a.type_code, a.value) for a in attrs]
                    for prefix, attrs in daemon.loc_rib_snapshot().items()
                }
            )
        assert states[0] == states[1]
