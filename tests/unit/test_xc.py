"""Unit tests for the xc compiler (lexer, parser, codegen)."""

import pytest

from repro.ebpf import HelperTable, VerifierConfig, VirtualMachine, verify
from repro.xc import CompileError, LexerError, ParseError, compile_source, parse
from repro.xc.lexer import tokenize


def run(source, helpers=None, constants=None, **regs):
    helper_ids = helpers.name_to_id() if helpers else {}
    program = compile_source(source, helper_ids, constants)
    allowed = set(helpers.ids()) if helpers else set()
    verify(program, VerifierConfig(allow_loops=True, allowed_helpers=allowed))
    return VirtualMachine(program, helpers).run(**regs)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('u64 f(u64 x) { return x + 0x10; } // c\n"s"')
        kinds = [token.kind for token in tokens]
        assert "type" in kinds and "name" in kinds and "num" in kinds and "str" in kinds

    def test_define_substitution(self):
        tokens = tokenize("#define N 5\nu64 f() { return N; }")
        assert any(token.kind == "num" and token.text == "5" for token in tokens)

    def test_chained_defines(self):
        tokens = tokenize("#define A B\n#define B 7\nu64 f() { return A; }")
        assert any(token.kind == "num" and token.text == "7" for token in tokens)

    def test_block_comment(self):
        tokens = tokenize("u64 f() { /* hi\nthere */ return 1; }")
        assert all(token.kind != "comment" for token in tokens)

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("u64 f() { return `; }")

    def test_constants_injected(self):
        tokens = tokenize("u64 f() { return LIMIT; }", {"LIMIT": 9})
        assert any(token.kind == "num" and token.text == "9" for token in tokens)


class TestParser:
    def test_entry_is_last_function(self):
        program = parse("u64 a() { return 1; } u64 b() { return 2; }")
        assert program.entry.name == "b"

    def test_rejects_empty(self):
        with pytest.raises(ParseError):
            parse("")

    def test_rejects_six_params(self):
        with pytest.raises(ParseError):
            parse("u64 f(u64 a, u64 b, u64 c, u64 d, u64 e, u64 g) { return 0; }")

    def test_rejects_six_args(self):
        with pytest.raises(ParseError):
            parse("u64 f() { g(1,2,3,4,5,6); return 0; }")

    def test_pointer_style_params_tolerated(self):
        # The paper's Listing 1 signature parses as-is.
        program = parse("uint64_t export_igp(uint64_t *args UNUSED) { return 0; }")
        assert program.entry.params == ("args",)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("u64 f() { u64 x = 1 return x; }")


class TestCodegen:
    def test_arithmetic_precedence(self):
        assert run("u64 f() { return 2 + 3 * 4; }") == 14
        assert run("u64 f() { return (2 + 3) * 4; }") == 20

    def test_comparisons_yield_booleans(self):
        assert run("u64 f() { return (3 < 5) + (5 <= 5) + (7 > 9); }") == 2

    def test_logical_short_circuit(self):
        # Division by a zero variable would trap the right side if
        # short-circuiting failed to skip it... eBPF defines x/0 == 0,
        # so instead use a helper with a side effect.
        helpers = HelperTable()
        calls = []
        helpers.register(1, "boom", lambda vm, *a: calls.append(1) or 1)
        assert run("u64 f() { return 0 && boom(); }", helpers) == 0
        assert calls == []
        assert run("u64 f() { return 1 || boom(); }", helpers) == 1
        assert calls == []

    def test_logical_normalises_to_bool(self):
        assert run("u64 f() { return 5 && 9; }") == 1
        assert run("u64 f() { return 0 || 42; }") == 1

    def test_not_operator(self):
        assert run("u64 f() { return !0 + !7; }") == 1

    def test_unary_minus_and_tilde(self):
        assert run("u64 f() { return 0 - (-5); }") == 5
        assert run("u64 f() { return ~0 - 1; }") == (1 << 64) - 2

    def test_while_with_break_continue(self):
        source = """
        u64 f() {
            u64 total = 0;
            u64 i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run(source) == 25  # 1+3+5+7+9

    def test_if_else_chain(self):
        source = """
        u64 f(u64 x) {
            if (x == 1) { return 10; }
            else if (x == 2) { return 20; }
            else { return 30; }
        }
        """
        assert run(source, r1=1) == 10
        assert run(source, r1=2) == 20
        assert run(source, r1=9) == 30

    def test_scoping_shadows(self):
        source = """
        u64 f() {
            u64 x = 1;
            if (1) { u64 y = 41; x = x + y; }
            return x;
        }
        """
        assert run(source) == 42

    def test_redeclaration_rejected(self):
        with pytest.raises(CompileError):
            compile_source("u64 f() { u64 x = 1; u64 x = 2; return x; }")

    def test_undefined_name_rejected(self):
        with pytest.raises(CompileError):
            compile_source("u64 f() { return ghost; }")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(CompileError):
            compile_source("u64 f() { x = 1; return 0; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_source("u64 f() { break; return 0; }")

    def test_arrays_and_typed_memory(self):
        source = """
        u64 f() {
            u8 buf[8];
            *(u32 *)(buf) = 0x11223344;
            *(u8 *)(buf + 4) = 0x55;
            return *(u16 *)(buf) + *(u8 *)(buf + 4);
        }
        """
        assert run(source) == 0x3344 + 0x55

    def test_string_literal_is_pointer(self):
        helpers = HelperTable()
        seen = []

        def collect(vm, ptr, *rest):
            seen.append(vm.memory.read_cstring(ptr))
            return 0

        helpers.register(1, "collect", collect)
        run('u64 f() { collect("coord"); return 0; }', helpers)
        assert seen == [b"coord"]

    def test_byteswap_builtins(self):
        assert run("u64 f() { return htons(0x1234); }") == 0x3412
        assert run("u64 f() { return htonl(0x11223344); }") == 0x44332211

    def test_signed_builtins(self):
        assert run("u64 f() { return sgt(0, -5); }") == 1
        assert run("u64 f() { return slt(-5, 0); }") == 1
        assert run("u64 f() { return sge(-5, -5) + sle(-6, -5); }") == 2

    def test_function_inlining(self):
        source = """
        u64 add3(u64 a, u64 b, u64 c) { return a + b + c; }
        u64 twice(u64 x) { return add3(x, x, 0); }
        u64 f() { return twice(4) + add3(1, 2, 3); }
        """
        assert run(source) == 14

    def test_inline_falls_off_end_returns_zero(self):
        source = """
        u64 nothing(u64 x) { if (x > 100) { return 1; } }
        u64 f() { return nothing(5); }
        """
        assert run(source) == 0

    def test_recursion_rejected(self):
        source = "u64 f(u64 x) { return f(x); } u64 main() { return f(1); }"
        with pytest.raises(CompileError, match="recursive"):
            compile_source(source)

    def test_helpers_unknown_function_rejected(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("u64 f() { return mystery(); }")

    def test_defines_and_constants(self):
        assert run("#define K 40\nu64 f() { return K + EXTRA; }", constants={"EXTRA": 2}) == 42

    def test_casts_are_ignored(self):
        assert run("u64 f() { return (u32)7; }") == 7

    def test_scalar_slot_exhaustion(self):
        body = "".join(f"u64 v{i} = {i};" for i in range(60))
        with pytest.raises(CompileError, match="scalar"):
            compile_source(f"u64 f() {{ {body} return 0; }}")

    def test_block_region_exhaustion(self):
        with pytest.raises(CompileError):
            compile_source("u64 f() { u8 big[300]; return 0; }")

    def test_compound_assignment(self):
        source = """
        u64 f() {
            u64 x = 10;
            x += 5;
            x -= 3;
            x *= 2;
            x /= 4;
            x <<= 2;
            x >>= 1;
            x |= 1;
            x &= 0xff;
            x ^= 2;
            return x;
        }
        """
        expected = 10
        expected += 5; expected -= 3; expected *= 2; expected //= 4
        expected <<= 2; expected >>= 1; expected |= 1; expected &= 0xFF; expected ^= 2
        assert run(source) == expected

    def test_array_indexing_read_write(self):
        source = """
        u64 f() {
            u8 bytes[8];
            u64 words[4];
            u64 i = 0;
            while (i < 8) {
                bytes[i] = i * 3;
                i += 1;
            }
            words[0] = 1000;
            words[1] = words[0] + bytes[7];
            words[1] += bytes[2];
            return words[1];
        }
        """
        assert run(source) == 1000 + 21 + 6

    def test_index_of_non_array_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            compile_source("u64 f() { u64 x = 1; return x[0]; }")

    def test_index_assign_to_non_array_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            compile_source("u64 f() { u64 x = 1; x[0] = 2; return 0; }")

    def test_index_jit_equivalence(self):
        from repro.ebpf import VirtualMachine

        source = """
        u64 f(u64 n) {
            u16 table[16];
            u64 i = 0;
            while (i < 16) {
                table[i] = i * i;
                i += 1;
            }
            return table[n];
        }
        """
        program = compile_source(source)
        for jit in (False, True):
            vm = VirtualMachine(program, jit=jit, trusted_layout=jit)
            assert vm.run(r1=9) == 81

    def test_constant_folding_shrinks_programs(self):
        folded = compile_source("u64 f() { return 2 + 3 * 4 - (1 << 4); }")
        unfolded_equivalent = compile_source("u64 f(u64 a) { return a; }")
        # A fully-constant expression compiles to a handful of moves.
        assert len(folded) <= len(unfolded_equivalent) + 4

    def test_constant_folding_preserves_semantics(self):
        assert run("u64 f() { return (5 > 3) && (0 - 1 > 100); }") == 1
        assert run("u64 f() { return !(~0); }") == 0
        assert run("u64 f() { return (1 << 63) >> 62; }") == 2

    def test_folding_leaves_zero_division_to_runtime(self):
        # Not folded away; the eBPF runtime rule (x/0 == 0) applies.
        assert run("u64 f() { return 5 / 0; }") == 0
        assert run("u64 f() { return 5 % 0; }") == 5

    def test_for_loop(self):
        source = """
        u64 f(u64 n) {
            u64 total = 0;
            for (u64 i = 0; i < n; i += 1) {
                total += i;
            }
            return total;
        }
        """
        assert run(source, r1=10) == 45

    def test_for_continue_reaches_step(self):
        source = """
        u64 f() {
            u64 total = 0;
            for (u64 i = 0; i < 10; i += 1) {
                if (i % 2 == 0) { continue; }
                total += i;
            }
            return total;
        }
        """
        assert run(source) == 1 + 3 + 5 + 7 + 9

    def test_for_break(self):
        source = """
        u64 f() {
            u64 i = 0;
            for (;;) {
                i += 1;
                if (i == 7) { break; }
            }
            return i;
        }
        """
        assert run(source) == 7

    def test_for_scope_confined(self):
        with pytest.raises(CompileError, match="undefined"):
            compile_source(
                "u64 f() { for (u64 i = 0; i < 3; i += 1) { } return i; }"
            )

    def test_paper_listing1_compiles(self):
        from repro.plugins.igp_filter import SOURCE
        from repro.core.abi import HELPER_IDS, PLUGIN_CONSTANTS

        constants = dict(PLUGIN_CONSTANTS)
        constants["MAX_METRIC"] = 500
        program = compile_source(SOURCE, HELPER_IDS, constants)
        verify(program, VerifierConfig(allow_loops=True, allowed_helpers=set(HELPER_IDS.values())))
