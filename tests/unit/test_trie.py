"""Unit tests for repro.bgp.trie."""

import pytest

from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bgp.trie import PrefixTrie


def p(text):
    return Prefix.parse(text)


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert p("10.0.0.0/8") not in trie

    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.get(p("10.0.0.0/8")) == "a"
        assert len(trie) == 1

    def test_insert_replaces(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert trie.get(p("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_get_default(self):
        assert PrefixTrie().get(p("10.0.0.0/8"), default=42) == 42

    def test_default_route_storable(self):
        trie = PrefixTrie()
        trie.insert(p("0.0.0.0/0"), "default")
        assert trie.get(p("0.0.0.0/0")) == "default"

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.remove(p("10.0.0.0/8")) == "a"
        assert len(trie) == 0
        assert p("10.0.0.0/8") not in trie

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTrie().remove(p("10.0.0.0/8"))

    def test_remove_keeps_descendants(self):
        trie = PrefixTrie()
        trie.insert(p("10.0.0.0/8"), "short")
        trie.insert(p("10.1.0.0/16"), "long")
        trie.remove(p("10.0.0.0/8"))
        assert trie.get(p("10.1.0.0/16")) == "long"


class TestLookups:
    def setup_method(self):
        self.trie = PrefixTrie()
        self.trie.insert(p("10.0.0.0/8"), 8)
        self.trie.insert(p("10.1.0.0/16"), 16)
        self.trie.insert(p("10.1.2.0/24"), 24)
        self.trie.insert(p("192.0.2.0/24"), 99)

    def test_longest_match_exact(self):
        match = self.trie.longest_match(p("10.1.2.0/24"))
        assert match == (p("10.1.2.0/24"), 24)

    def test_longest_match_covering(self):
        match = self.trie.longest_match(p("10.1.2.128/25"))
        assert match == (p("10.1.2.0/24"), 24)

    def test_longest_match_falls_back_to_shortest(self):
        match = self.trie.longest_match(p("10.200.0.0/16"))
        assert match == (p("10.0.0.0/8"), 8)

    def test_longest_match_none(self):
        assert self.trie.longest_match(p("11.0.0.0/8")) is None

    def test_lookup_address(self):
        match = self.trie.lookup_address(parse_ipv4("10.1.2.3"))
        assert match == (p("10.1.2.3/32").__class__(parse_ipv4("10.1.2.0"), 24), 24)

    def test_covering_walk_shortest_first(self):
        found = list(self.trie.covering(p("10.1.2.0/24")))
        assert [value for _, value in found] == [8, 16, 24]

    def test_covering_excludes_more_specific(self):
        found = list(self.trie.covering(p("10.1.0.0/16")))
        assert [value for _, value in found] == [8, 16]

    def test_covered_subtree(self):
        found = dict(self.trie.covered(p("10.0.0.0/8")))
        assert set(found.values()) == {8, 16, 24}

    def test_items_enumerates_everything(self):
        assert sorted(value for _, value in self.trie.items()) == [8, 16, 24, 99]

    def test_items_keys_are_correct_prefixes(self):
        found = dict(self.trie.items())
        assert found[p("192.0.2.0/24")] == 99
        assert found[p("10.1.0.0/16")] == 16
