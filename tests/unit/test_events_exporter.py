"""Unit tests for the telemetry plane: event log, progress, exporter.

Covers the schema'd JSONL event log (validation, ring eviction,
write-through files, the ``xbgp events`` file helpers), the live
replay-progress folder (state machine, ETA, gauges), the HTTP exporter
endpoints, and the batch processor's flush instrumentation.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EventLog,
    EventSchemaError,
    emit_convergence_events,
    filter_events,
    read_events,
    render_event,
    validate_event,
    validate_jsonl,
)
from repro.telemetry.exporter import TelemetryExporter
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import ReplayProgress


class TestEventSchema:
    def test_valid_event_passes(self):
        validate_event(
            {"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 10}
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(EventSchemaError, match="unknown event type"):
            validate_event({"event": "nope", "ts": 1.0})

    def test_missing_field_rejected(self):
        with pytest.raises(EventSchemaError, match="missing required"):
            validate_event({"event": "shard_start", "ts": 1.0, "shard": 0})

    def test_bad_ts_rejected(self):
        with pytest.raises(EventSchemaError, match="'ts'"):
            validate_event(
                {"event": "shard_start", "ts": "now", "shard": 0, "routes": 1}
            )

    def test_non_dict_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event(["shard_start"])


class TestEventLog:
    def test_emit_stamps_ts_and_seq(self):
        log = EventLog(clock=lambda: 123.0)
        record = log.emit("shard_start", shard=0, routes=5)
        assert record["ts"] == 123.0
        assert record["seq"] == 1
        assert log.emit("shard_finish", shard=0, routes=5, replay_seconds=0.1)[
            "seq"
        ] == 2

    def test_append_keeps_worker_ts(self):
        log = EventLog(clock=lambda: 999.0)
        record = log.append(
            {"event": "shard_start", "ts": 5.0, "shard": 1, "routes": 2}
        )
        assert record["ts"] == 5.0  # worker wall-clock survives
        assert record["seq"] == 1  # seq is the log's, not the worker's

    def test_invalid_emit_raises(self):
        with pytest.raises(EventSchemaError):
            EventLog().emit("shard_start", shard=0)  # no routes

    def test_ring_evicts_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("shard_start", shard=index, routes=1)
        assert len(log) == 3
        assert log.recorded == 5
        assert log.evicted == 2
        assert [e["shard"] for e in log.events()] == [2, 3, 4]
        assert [e["shard"] for e in log.tail(2)] == [3, 4]

    def test_kind_filter(self):
        log = EventLog()
        log.emit("shard_start", shard=0, routes=1)
        log.emit("shard_finish", shard=0, routes=1, replay_seconds=0.1)
        assert len(log.events("shard_start")) == 1

    def test_write_through_file_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("replay_start", shards=2, routes=100)
        log.emit("shard_start", shard=0, routes=50)
        log.close()
        events = read_events(str(path))
        assert [e["event"] for e in events] == ["replay_start", "shard_start"]
        valid, errors = validate_jsonl(str(path))
        assert (valid, errors) == (2, [])

    def test_validate_jsonl_reports_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 1})
            + "\nnot json\n"
            + json.dumps({"event": "bogus", "ts": 1.0})
            + "\n"
        )
        valid, errors = validate_jsonl(str(path))
        assert valid == 1
        assert len(errors) == 2
        with pytest.raises(EventSchemaError, match="bad.jsonl:2"):
            read_events(str(path))

    def test_filter_events_by_kind_and_shard(self):
        events = [
            {"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 1},
            {"event": "shard_start", "ts": 1.0, "shard": 1, "routes": 1},
            {"event": "replay_start", "ts": 1.0, "shards": 2, "routes": 2},
        ]
        assert len(filter_events(events, kinds=["shard_start"])) == 2
        assert len(filter_events(events, shard=1)) == 1

    def test_render_event_is_one_line(self):
        line = render_event(
            {"event": "batch_flush", "ts": 0.0, "seq": 3, "peer": "10.0.1.2", "updates": 7}
        )
        assert "batch_flush" in line
        assert "peer=10.0.1.2" in line
        assert "\n" not in line

    def test_quarantine_transitions_become_events(self):
        from repro.telemetry import QuarantinePolicy

        telemetry = Telemetry(policy=QuarantinePolicy(error_threshold=2))
        telemetry.events = EventLog()
        health = telemetry.health.state_for("imp", "ext")
        for _ in range(2):
            telemetry.health.record_error(health)
        trips = telemetry.events.events("quarantine")
        assert trips and trips[0]["to_state"] == "open"

    def test_convergence_report_emits_events(self):
        log = EventLog()
        count = emit_convergence_events(
            log,
            {
                "router": "10.0.0.1",
                "flaps": {"198.51.100.0/24": 5, "203.0.113.0/24": 1},
                "oscillating": ["198.51.100.0/24"],
                "time_of_last_change": 12.5,
            },
        )
        assert count == 2
        assert log.events("convergence")[0]["total_flaps"] == 6
        assert log.events("oscillation")[0]["flaps"] == 5


class TestReplayProgress:
    def events(self):
        return [
            {"event": "replay_start", "ts": 0.0, "shards": 2, "routes": 100},
            {"event": "shard_start", "ts": 0.0, "shard": 0, "routes": 60},
            {"event": "shard_start", "ts": 0.0, "shard": 1, "routes": 40},
            {"event": "shard_progress", "ts": 0.0, "shard": 0, "routes_done": 30, "routes": 60},
        ]

    def test_state_folds(self):
        progress = ReplayProgress()
        for event in self.events():
            progress.on_event(event)
        assert progress.done_routes == 30
        assert progress.known_routes == 100
        assert progress.ratio() == pytest.approx(0.3)
        assert not progress.finished

    def test_eta_uses_observed_rate(self):
        now = [0.0]
        progress = ReplayProgress(clock=lambda: now[0])
        events = self.events()
        for event in events[:3]:
            progress.on_event(event)
        now[0] = 10.0
        progress.on_event(events[3])
        # 30 routes in 10s -> 3/s -> 70 remaining ~ 23.3s.
        assert progress.eta_seconds() == pytest.approx(70 / 3.0)

    def test_finish_closes_everything(self):
        progress = ReplayProgress()
        for event in self.events():
            progress.on_event(event)
        progress.on_event(
            {"event": "replay_finish", "ts": 1.0, "shards": 2, "routes": 100, "wall_seconds": 4.2}
        )
        assert progress.finished
        assert progress.ratio() == 1.0
        assert progress.eta_seconds() == 0.0
        assert "done in 4.2s" in progress.render()

    def test_gauges_track_progress(self):
        registry = MetricsRegistry()
        progress = ReplayProgress(registry)
        for event in self.events():
            progress.on_event(event)
        assert registry.gauge(
            "xbgp_replay_progress_routes", "", shard="0"
        ).get() == 30
        assert registry.gauge("xbgp_replay_total_routes", "").get() == 100
        assert registry.gauge("xbgp_replay_done_ratio", "").get() == pytest.approx(0.3)

    def test_ignores_foreign_events(self):
        progress = ReplayProgress()
        progress.on_event({"event": "batch_flush", "ts": 0.0, "peer": "p", "updates": 1})
        assert progress.shards == {}


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read()


class TestExporter:
    def test_endpoints(self):
        telemetry = Telemetry()
        telemetry.registry.counter("xbgp_demo", "demo counter").inc(3)
        log = EventLog()
        log.emit("shard_start", shard=0, routes=5)
        log.emit("shard_finish", shard=0, routes=5, replay_seconds=0.1)
        with TelemetryExporter(telemetry, events=log) as exporter:
            status, body = fetch(exporter.url("/metrics"))
            assert status == 200
            assert b"xbgp_demo_total 3" in body

            status, body = fetch(exporter.url("/health"))
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"

            status, body = fetch(exporter.url("/events"))
            assert json.loads(body)["count"] == 2

            status, body = fetch(exporter.url("/events?event=shard_start"))
            payload = json.loads(body)
            assert payload["count"] == 1
            assert payload["events"][0]["event"] == "shard_start"

            status, body = fetch(exporter.url("/events?limit=1"))
            assert json.loads(body)["events"][0]["event"] == "shard_finish"

            status, _ = fetch(exporter.url("/"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                fetch(exporter.url("/nope"))
            assert exc_info.value.code == 404
            assert exporter.requests_served == 7

    def test_health_degrades_to_503(self):
        from repro.telemetry import QuarantinePolicy

        telemetry = Telemetry(policy=QuarantinePolicy(error_threshold=1))
        telemetry.health.record_error(telemetry.health.state_for("imp", "ext"))
        with TelemetryExporter(telemetry) as exporter:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                fetch(exporter.url("/health"))
            assert exc_info.value.code == 503
            payload = json.loads(exc_info.value.read())
            assert payload["status"] == "degraded"
            assert payload["quarantined"] == 1

    def test_replace_sources_swaps_registry(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("phase", "").inc(1)
        second.counter("phase", "").inc(2)
        with TelemetryExporter(registry=first) as exporter:
            assert b"phase_total 1" in fetch(exporter.url("/metrics"))[1]
            exporter.replace_sources(registry=second)
            assert b"phase_total 2" in fetch(exporter.url("/metrics"))[1]

    def test_callable_sources(self):
        with TelemetryExporter(
            registry=MetricsRegistry,  # a fresh registry per scrape
            health=lambda: [{"state": "closed"}],
            events=lambda: [
                {"event": "replay_start", "ts": 0.0, "shards": 1, "routes": 1}
            ],
        ) as exporter:
            assert fetch(exporter.url("/metrics"))[0] == 200
            assert json.loads(fetch(exporter.url("/health"))[1])["extensions"] == 1
            assert json.loads(fetch(exporter.url("/events"))[1])["count"] == 1


class TestBatchFlushInstrumentation:
    def build(self, events=None):
        from repro.frr.daemon import FrrDaemon
        from repro.core.vmm import VmmConfig
        from repro.scale import BatchProcessor

        daemon = FrrDaemon(
            asn=65001,
            router_id="10.0.0.1",
            local_address="10.0.0.1",
            vmm_config=VmmConfig(telemetry=True),
        )
        return daemon, BatchProcessor(daemon, batch_size=4, events=events)

    def test_flush_counts_and_events(self):
        from repro.bgp.messages import UpdateMessage
        from repro.bgp.prefix import parse_ipv4
        from repro.workload import RibGenerator, build_updates

        log = EventLog()
        daemon, processor = self.build(events=log)
        peer = "10.0.1.2"
        daemon.add_neighbor(peer, 65100, lambda data: None)
        daemon._established[parse_ipv4(peer)] = True
        daemon.neighbors[parse_ipv4(peer)].established = True
        routes = RibGenerator(n_routes=24, seed=3).generate()
        updates = build_updates(
            routes,
            next_hop=parse_ipv4(peer),
            session="ebgp",
            sender_asn=65100,
            max_prefixes_per_update=2,
        )
        for update in updates:
            processor.receive_raw(peer, update.encode())
        processor.receive_raw(peer, UpdateMessage.end_of_rib().encode())
        processor.flush()

        registry = daemon.vmm.telemetry.registry
        flushed = registry.counter("xbgp_batches_flushed", "").value
        assert flushed == processor.batches_flushed > 1
        sizes = registry.histogram(
            "xbgp_batch_size", "", buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256]
        )
        assert sizes.count == flushed
        flush_events = log.events("batch_flush")
        assert len(flush_events) == flushed
        assert sum(e["updates"] for e in flush_events) == processor.updates_batched


class TestEventLogRotation:
    def test_rotation_moves_full_file_aside(self, tmp_path):
        from repro.telemetry.events import rotated_paths

        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, max_bytes=400, clock=lambda: 1.0)
        emitted = 0
        while log.rotations == 0:
            log.emit("shard_start", shard=emitted, routes=10)
            emitted += 1
            assert emitted < 100, "rotation never triggered"
        log.emit("shard_start", shard=emitted, routes=10)
        emitted += 1
        log.close()
        sibling = path + ".1"
        assert log.rotations == 1
        assert rotated_paths(path) == [sibling, path]
        # One rotation keeps everything: concatenating oldest-first
        # recovers every event in order.
        events = []
        for part in rotated_paths(path):
            events.extend(read_events(part))
        assert [e["shard"] for e in events] == list(range(emitted))

    def test_no_rotation_without_cap(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, clock=lambda: 1.0)
        for index in range(50):
            log.emit("shard_start", shard=index, routes=10)
        log.close()
        assert log.rotations == 0
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_second_rotation_replaces_sibling(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, max_bytes=150, clock=lambda: 1.0)
        for index in range(20):
            log.emit("shard_start", shard=index, routes=10)
        log.close()
        assert log.rotations >= 2
        # The sibling holds the window right before the live file.
        sibling_events = read_events(path + ".1")
        live_events = read_events(path)
        assert sibling_events[-1]["seq"] == live_events[0]["seq"] - 1

    def test_rotated_paths_without_sibling(self, tmp_path):
        from repro.telemetry.events import rotated_paths

        path = str(tmp_path / "events.jsonl")
        assert rotated_paths(path) == [path]


class TestReplayProgressStall:
    def events(self):
        return [
            {"event": "replay_start", "ts": 0.0, "shards": 1, "routes": 100},
            {"event": "shard_start", "ts": 0.0, "shard": 0, "routes": 100},
            {
                "event": "shard_progress",
                "ts": 0.0,
                "shard": 0,
                "routes_done": 40,
                "routes": 100,
            },
        ]

    def test_stalled_after_quiet_period(self):
        now = [0.0]
        progress = ReplayProgress(clock=lambda: now[0], stall_after=10.0)
        for event in self.events():
            progress.on_event(event)
        now[0] = 12.0
        assert progress.stalled()
        assert progress.eta_seconds() is None
        assert "stalled" in progress.render()

    def test_not_stalled_while_advancing(self):
        clock = [0.0]
        progress = ReplayProgress(clock=lambda: clock[0], stall_after=10.0)
        for event in self.events():
            progress.on_event(event)
        clock[0] = 9.0
        assert not progress.stalled()
        assert progress.eta_seconds() is not None

    def test_finished_replay_never_stalled(self):
        clock = [0.0]
        progress = ReplayProgress(clock=lambda: clock[0], stall_after=10.0)
        for event in self.events():
            progress.on_event(event)
        progress.on_event(
            {
                "event": "replay_finish",
                "ts": 1.0,
                "shards": 1,
                "routes": 100,
                "wall_seconds": 1.0,
            }
        )
        clock[0] = 100.0
        assert not progress.stalled()
        assert progress.eta_seconds() == 0.0

    def test_untouched_progress_not_stalled(self):
        progress = ReplayProgress(clock=lambda: 1e9)
        assert not progress.stalled()
        assert progress.eta_seconds() is None

    def test_zero_elapsed_yields_no_eta(self):
        # Same-tick heartbeats: elapsed == 0, no divide-by-zero.
        progress = ReplayProgress(clock=lambda: 5.0)
        for event in self.events():
            progress.on_event(event)
        assert progress.eta_seconds() is None

    def test_stalled_eta_gauge_reads_sentinel(self):
        now = [0.0]
        registry = MetricsRegistry()
        progress = ReplayProgress(
            registry, clock=lambda: now[0], stall_after=10.0
        )
        for event in self.events():
            progress.on_event(event)
        now[0] = 50.0
        # A later heartbeat with no forward progress re-exports gauges.
        progress.on_event(
            {
                "event": "shard_progress",
                "ts": 2.0,
                "shard": 0,
                "routes_done": 40,
                "routes": 100,
            }
        )
        assert registry.gauge("xbgp_replay_eta_seconds", "").get() == -1.0


class TestAlertAndTimeseriesEndpoints:
    def test_alerts_endpoint_serves_engine_snapshot(self):
        from repro.telemetry.aggregate import snapshot_registry
        from repro.telemetry.alerts import AlertEngine, parse_rule
        from repro.telemetry.timeseries import make_sample

        engine = AlertEngine([parse_rule("xbgp_demo > 0")])
        registry = MetricsRegistry()
        registry.counter("xbgp_demo", "demo").inc()
        engine.observe(make_sample(snapshot_registry(registry), 1.0))
        with TelemetryExporter(registry=registry, alerts=engine) as exporter:
            status, body = fetch(exporter.url("/alerts"))
            assert status == 200
            payload = json.loads(body)
            assert payload["critical_firing"] is True
            assert payload["rules"][0]["state"] == "firing"
            # A firing critical rule degrades /health to 503.
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                fetch(exporter.url("/health"))
            assert exc_info.value.code == 503
            assert json.loads(exc_info.value.read())["critical_alerts"] is True

    def test_alerts_endpoint_defaults_empty(self):
        with TelemetryExporter(registry=MetricsRegistry()) as exporter:
            payload = json.loads(fetch(exporter.url("/alerts"))[1])
            assert payload == {
                "rules": [],
                "firing": 0,
                "critical_firing": False,
            }

    def test_timeseries_endpoint_serves_and_limits(self):
        from repro.telemetry.timeseries import TimeSeries
        from repro.telemetry.aggregate import snapshot_registry

        series = TimeSeries()
        registry = MetricsRegistry()
        for ts in (1.0, 2.0, 3.0):
            series.append(snapshot_registry(registry), ts)
        with TelemetryExporter(
            registry=registry, timeseries=series
        ) as exporter:
            payload = json.loads(fetch(exporter.url("/timeseries"))[1])
            assert payload["count"] == 3
            payload = json.loads(fetch(exporter.url("/timeseries?limit=2"))[1])
            assert payload["count"] == 2
            assert [s["ts"] for s in payload["samples"]] == [2.0, 3.0]


class TestConcurrentScrapes:
    def test_hammered_endpoints_stay_parseable_mid_replay(self):
        """Scrape /metrics and /events from threads while a writer
        mutates the served registry and event log under the exporter
        lock (what a live sharded replay does), and assert every
        response parses and declares an explicit charset."""
        import threading

        registry = MetricsRegistry()
        log = EventLog()
        stop = threading.Event()
        with TelemetryExporter(registry=registry, events=log) as exporter:

            def writer():
                shard = 0
                while not stop.is_set():
                    with exporter.lock:
                        registry.counter(
                            "xbgp_scraped", "scrape-churn counter",
                            shard=str(shard % 4),
                        ).inc()
                        registry.histogram(
                            "xbgp_scrape_seconds", "scrape-churn histogram"
                        ).observe(0.001 * (shard % 7))
                        log.emit(
                            "shard_progress",
                            shard=shard % 4,
                            routes_done=shard,
                            routes=10_000,
                        )
                    shard += 1

            failures = []

            def scraper(path, parse):
                for _ in range(50):
                    try:
                        with urllib.request.urlopen(
                            exporter.url(path), timeout=5
                        ) as response:
                            content_type = response.headers["Content-Type"]
                            body = response.read()
                        assert "charset=utf-8" in content_type, content_type
                        parse(body)
                    except Exception as exc:  # noqa: BLE001 - collected
                        failures.append(f"{path}: {exc!r}")
                        return

            def parse_metrics(body):
                for line in body.decode("utf-8").splitlines():
                    assert line.startswith("#") or " " in line, line

            threads = [threading.Thread(target=writer, daemon=True)]
            for _ in range(3):
                threads.append(
                    threading.Thread(
                        target=scraper, args=("/metrics", parse_metrics)
                    )
                )
                threads.append(
                    threading.Thread(
                        target=scraper, args=("/events", json.loads)
                    )
                )
            for thread in threads:
                thread.start()
            for thread in threads[1:]:
                thread.join(timeout=60)
            stop.set()
            threads[0].join(timeout=10)
            assert not failures, failures
            assert exporter.requests_served >= 300

    def test_content_type_charsets(self):
        with TelemetryExporter(registry=MetricsRegistry()) as exporter:
            expectations = {
                "/metrics": "text/plain; version=0.0.4; charset=utf-8",
                "/health": "application/json; charset=utf-8",
                "/events": "application/json; charset=utf-8",
                "/alerts": "application/json; charset=utf-8",
                "/timeseries": "application/json; charset=utf-8",
            }
            for path, expected in expectations.items():
                with urllib.request.urlopen(
                    exporter.url(path), timeout=5
                ) as response:
                    assert response.headers["Content-Type"] == expected, path
