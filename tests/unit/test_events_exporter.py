"""Unit tests for the telemetry plane: event log, progress, exporter.

Covers the schema'd JSONL event log (validation, ring eviction,
write-through files, the ``xbgp events`` file helpers), the live
replay-progress folder (state machine, ETA, gauges), the HTTP exporter
endpoints, and the batch processor's flush instrumentation.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EventLog,
    EventSchemaError,
    emit_convergence_events,
    filter_events,
    read_events,
    render_event,
    validate_event,
    validate_jsonl,
)
from repro.telemetry.exporter import TelemetryExporter
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import ReplayProgress


class TestEventSchema:
    def test_valid_event_passes(self):
        validate_event(
            {"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 10}
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(EventSchemaError, match="unknown event type"):
            validate_event({"event": "nope", "ts": 1.0})

    def test_missing_field_rejected(self):
        with pytest.raises(EventSchemaError, match="missing required"):
            validate_event({"event": "shard_start", "ts": 1.0, "shard": 0})

    def test_bad_ts_rejected(self):
        with pytest.raises(EventSchemaError, match="'ts'"):
            validate_event(
                {"event": "shard_start", "ts": "now", "shard": 0, "routes": 1}
            )

    def test_non_dict_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event(["shard_start"])


class TestEventLog:
    def test_emit_stamps_ts_and_seq(self):
        log = EventLog(clock=lambda: 123.0)
        record = log.emit("shard_start", shard=0, routes=5)
        assert record["ts"] == 123.0
        assert record["seq"] == 1
        assert log.emit("shard_finish", shard=0, routes=5, replay_seconds=0.1)[
            "seq"
        ] == 2

    def test_append_keeps_worker_ts(self):
        log = EventLog(clock=lambda: 999.0)
        record = log.append(
            {"event": "shard_start", "ts": 5.0, "shard": 1, "routes": 2}
        )
        assert record["ts"] == 5.0  # worker wall-clock survives
        assert record["seq"] == 1  # seq is the log's, not the worker's

    def test_invalid_emit_raises(self):
        with pytest.raises(EventSchemaError):
            EventLog().emit("shard_start", shard=0)  # no routes

    def test_ring_evicts_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("shard_start", shard=index, routes=1)
        assert len(log) == 3
        assert log.recorded == 5
        assert log.evicted == 2
        assert [e["shard"] for e in log.events()] == [2, 3, 4]
        assert [e["shard"] for e in log.tail(2)] == [3, 4]

    def test_kind_filter(self):
        log = EventLog()
        log.emit("shard_start", shard=0, routes=1)
        log.emit("shard_finish", shard=0, routes=1, replay_seconds=0.1)
        assert len(log.events("shard_start")) == 1

    def test_write_through_file_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("replay_start", shards=2, routes=100)
        log.emit("shard_start", shard=0, routes=50)
        log.close()
        events = read_events(str(path))
        assert [e["event"] for e in events] == ["replay_start", "shard_start"]
        valid, errors = validate_jsonl(str(path))
        assert (valid, errors) == (2, [])

    def test_validate_jsonl_reports_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 1})
            + "\nnot json\n"
            + json.dumps({"event": "bogus", "ts": 1.0})
            + "\n"
        )
        valid, errors = validate_jsonl(str(path))
        assert valid == 1
        assert len(errors) == 2
        with pytest.raises(EventSchemaError, match="bad.jsonl:2"):
            read_events(str(path))

    def test_filter_events_by_kind_and_shard(self):
        events = [
            {"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 1},
            {"event": "shard_start", "ts": 1.0, "shard": 1, "routes": 1},
            {"event": "replay_start", "ts": 1.0, "shards": 2, "routes": 2},
        ]
        assert len(filter_events(events, kinds=["shard_start"])) == 2
        assert len(filter_events(events, shard=1)) == 1

    def test_render_event_is_one_line(self):
        line = render_event(
            {"event": "batch_flush", "ts": 0.0, "seq": 3, "peer": "10.0.1.2", "updates": 7}
        )
        assert "batch_flush" in line
        assert "peer=10.0.1.2" in line
        assert "\n" not in line

    def test_quarantine_transitions_become_events(self):
        from repro.telemetry import QuarantinePolicy

        telemetry = Telemetry(policy=QuarantinePolicy(error_threshold=2))
        telemetry.events = EventLog()
        health = telemetry.health.state_for("imp", "ext")
        for _ in range(2):
            telemetry.health.record_error(health)
        trips = telemetry.events.events("quarantine")
        assert trips and trips[0]["to_state"] == "open"

    def test_convergence_report_emits_events(self):
        log = EventLog()
        count = emit_convergence_events(
            log,
            {
                "router": "10.0.0.1",
                "flaps": {"198.51.100.0/24": 5, "203.0.113.0/24": 1},
                "oscillating": ["198.51.100.0/24"],
                "time_of_last_change": 12.5,
            },
        )
        assert count == 2
        assert log.events("convergence")[0]["total_flaps"] == 6
        assert log.events("oscillation")[0]["flaps"] == 5


class TestReplayProgress:
    def events(self):
        return [
            {"event": "replay_start", "ts": 0.0, "shards": 2, "routes": 100},
            {"event": "shard_start", "ts": 0.0, "shard": 0, "routes": 60},
            {"event": "shard_start", "ts": 0.0, "shard": 1, "routes": 40},
            {"event": "shard_progress", "ts": 0.0, "shard": 0, "routes_done": 30, "routes": 60},
        ]

    def test_state_folds(self):
        progress = ReplayProgress()
        for event in self.events():
            progress.on_event(event)
        assert progress.done_routes == 30
        assert progress.known_routes == 100
        assert progress.ratio() == pytest.approx(0.3)
        assert not progress.finished

    def test_eta_uses_observed_rate(self):
        clock = iter([0.0, 10.0, 10.0]).__next__
        progress = ReplayProgress(clock=clock)
        for event in self.events():
            progress.on_event(event)
        # 30 routes in 10s -> 3/s -> 70 remaining ~ 23.3s.
        assert progress.eta_seconds() == pytest.approx(70 / 3.0)

    def test_finish_closes_everything(self):
        progress = ReplayProgress()
        for event in self.events():
            progress.on_event(event)
        progress.on_event(
            {"event": "replay_finish", "ts": 1.0, "shards": 2, "routes": 100, "wall_seconds": 4.2}
        )
        assert progress.finished
        assert progress.ratio() == 1.0
        assert progress.eta_seconds() == 0.0
        assert "done in 4.2s" in progress.render()

    def test_gauges_track_progress(self):
        registry = MetricsRegistry()
        progress = ReplayProgress(registry)
        for event in self.events():
            progress.on_event(event)
        assert registry.gauge(
            "xbgp_replay_progress_routes", "", shard="0"
        ).get() == 30
        assert registry.gauge("xbgp_replay_total_routes", "").get() == 100
        assert registry.gauge("xbgp_replay_done_ratio", "").get() == pytest.approx(0.3)

    def test_ignores_foreign_events(self):
        progress = ReplayProgress()
        progress.on_event({"event": "batch_flush", "ts": 0.0, "peer": "p", "updates": 1})
        assert progress.shards == {}


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read()


class TestExporter:
    def test_endpoints(self):
        telemetry = Telemetry()
        telemetry.registry.counter("xbgp_demo", "demo counter").inc(3)
        log = EventLog()
        log.emit("shard_start", shard=0, routes=5)
        log.emit("shard_finish", shard=0, routes=5, replay_seconds=0.1)
        with TelemetryExporter(telemetry, events=log) as exporter:
            status, body = fetch(exporter.url("/metrics"))
            assert status == 200
            assert b"xbgp_demo_total 3" in body

            status, body = fetch(exporter.url("/health"))
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"

            status, body = fetch(exporter.url("/events"))
            assert json.loads(body)["count"] == 2

            status, body = fetch(exporter.url("/events?event=shard_start"))
            payload = json.loads(body)
            assert payload["count"] == 1
            assert payload["events"][0]["event"] == "shard_start"

            status, body = fetch(exporter.url("/events?limit=1"))
            assert json.loads(body)["events"][0]["event"] == "shard_finish"

            status, _ = fetch(exporter.url("/"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                fetch(exporter.url("/nope"))
            assert exc_info.value.code == 404
            assert exporter.requests_served == 7

    def test_health_degrades_to_503(self):
        from repro.telemetry import QuarantinePolicy

        telemetry = Telemetry(policy=QuarantinePolicy(error_threshold=1))
        telemetry.health.record_error(telemetry.health.state_for("imp", "ext"))
        with TelemetryExporter(telemetry) as exporter:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                fetch(exporter.url("/health"))
            assert exc_info.value.code == 503
            payload = json.loads(exc_info.value.read())
            assert payload["status"] == "degraded"
            assert payload["quarantined"] == 1

    def test_replace_sources_swaps_registry(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("phase", "").inc(1)
        second.counter("phase", "").inc(2)
        with TelemetryExporter(registry=first) as exporter:
            assert b"phase_total 1" in fetch(exporter.url("/metrics"))[1]
            exporter.replace_sources(registry=second)
            assert b"phase_total 2" in fetch(exporter.url("/metrics"))[1]

    def test_callable_sources(self):
        with TelemetryExporter(
            registry=MetricsRegistry,  # a fresh registry per scrape
            health=lambda: [{"state": "closed"}],
            events=lambda: [
                {"event": "replay_start", "ts": 0.0, "shards": 1, "routes": 1}
            ],
        ) as exporter:
            assert fetch(exporter.url("/metrics"))[0] == 200
            assert json.loads(fetch(exporter.url("/health"))[1])["extensions"] == 1
            assert json.loads(fetch(exporter.url("/events"))[1])["count"] == 1


class TestBatchFlushInstrumentation:
    def build(self, events=None):
        from repro.frr.daemon import FrrDaemon
        from repro.core.vmm import VmmConfig
        from repro.scale import BatchProcessor

        daemon = FrrDaemon(
            asn=65001,
            router_id="10.0.0.1",
            local_address="10.0.0.1",
            vmm_config=VmmConfig(telemetry=True),
        )
        return daemon, BatchProcessor(daemon, batch_size=4, events=events)

    def test_flush_counts_and_events(self):
        from repro.bgp.messages import UpdateMessage
        from repro.bgp.prefix import parse_ipv4
        from repro.workload import RibGenerator, build_updates

        log = EventLog()
        daemon, processor = self.build(events=log)
        peer = "10.0.1.2"
        daemon.add_neighbor(peer, 65100, lambda data: None)
        daemon._established[parse_ipv4(peer)] = True
        daemon.neighbors[parse_ipv4(peer)].established = True
        routes = RibGenerator(n_routes=24, seed=3).generate()
        updates = build_updates(
            routes,
            next_hop=parse_ipv4(peer),
            session="ebgp",
            sender_asn=65100,
            max_prefixes_per_update=2,
        )
        for update in updates:
            processor.receive_raw(peer, update.encode())
        processor.receive_raw(peer, UpdateMessage.end_of_rib().encode())
        processor.flush()

        registry = daemon.vmm.telemetry.registry
        flushed = registry.counter("xbgp_batches_flushed", "").value
        assert flushed == processor.batches_flushed > 1
        sizes = registry.histogram(
            "xbgp_batch_size", "", buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256]
        )
        assert sizes.count == flushed
        flush_events = log.events("batch_flush")
        assert len(flush_events) == flushed
        assert sum(e["updates"] for e in flush_events) == processor.updates_batched
