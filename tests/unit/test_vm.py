"""Unit tests for the eBPF interpreter (and its sandbox)."""

import pytest

from repro.ebpf.assembler import assemble
from repro.ebpf.helpers import HelperError, HelperTable
from repro.ebpf.memory import (
    MemoryRegion,
    SandboxViolation,
    VmMemory,
    STACK_SIZE,
)
from repro.ebpf.vm import ExecutionError, VirtualMachine


def run(source, helpers=None, memory=None, budget=100000, **regs):
    vm = VirtualMachine(assemble(source, helpers.name_to_id() if helpers else None),
                        helpers, memory, step_budget=budget)
    return vm.run(**regs)


class TestAlu:
    def test_mov_add_sub(self):
        assert run("mov r0, 10\nadd r0, 5\nsub r0, 3\nexit") == 12

    def test_mul_div_mod(self):
        assert run("mov r0, 7\nmul r0, 6\ndiv r0, 5\nmod r0, 5\nexit") == 3

    def test_runtime_division_by_zero_yields_zero(self):
        assert run("mov r0, 7\nmov r1, 0\ndiv r0, r1\nexit") == 0

    def test_runtime_modulo_by_zero_keeps_value(self):
        assert run("mov r0, 7\nmov r1, 0\nmod r0, r1\nexit") == 7

    def test_bitwise(self):
        assert run("mov r0, 0xF0\nor r0, 0x0F\nand r0, 0x3C\nxor r0, 0xFF\nexit") == 0xC3

    def test_shifts(self):
        assert run("mov r0, 1\nlsh r0, 40\nrsh r0, 8\nexit") == 1 << 32

    def test_arsh_sign_extends(self):
        assert run("mov r0, -8\narsh r0, 1\nexit") == (-4) & ((1 << 64) - 1)

    def test_neg(self):
        assert run("mov r0, 5\nneg r0\nexit") == ((1 << 64) - 5)

    def test_negative_immediate_sign_extends_to_64(self):
        assert run("mov r0, -1\nexit") == (1 << 64) - 1

    def test_alu32_truncates_and_zero_extends(self):
        assert run("mov r0, -1\nadd32 r0, 1\nexit") == 0
        assert run("lddw r0, 0x1FFFFFFFF\nmov32 r0, r0\nexit") == 0xFFFFFFFF

    def test_lddw_full_64bit(self):
        assert run("lddw r0, 0x1122334455667788\nexit") == 0x1122334455667788

    def test_be16(self):
        assert run("mov r0, 0x1234\nbe16 r0\nexit") == 0x3412

    def test_be32(self):
        assert run("mov r0, 0x12345678\nbe32 r0\nexit") == 0x78563412

    def test_le_truncates(self):
        assert run("lddw r0, 0x1122334455667788\nle32 r0\nexit") == 0x55667788

    def test_shift_amount_wraps(self):
        assert run("mov r0, 1\nmov r1, 64\nlsh r0, r1\nexit") == 1


class TestJumps:
    def test_unsigned_vs_signed_compare(self):
        # -1 unsigned is huge: jgt takes it; jsgt must not.
        assert run("mov r1, -1\nmov r0, 0\njgt r1, 5, t\nexit\nt:\nmov r0, 1\nexit") == 1
        assert run("mov r1, -1\nmov r0, 0\njsgt r1, 5, t\nexit\nt:\nmov r0, 1\nexit") == 0

    def test_jset(self):
        assert run("mov r1, 0b1010\nmov r0, 0\njset r1, 0b0010, t\nexit\nt:\nmov r0, 1\nexit") == 1

    def test_jump32_compares_low_word(self):
        src = "lddw r1, 0x100000001\nmov r0, 0\njeq32 r1, 1, t\nexit\nt:\nmov r0, 1\nexit"
        assert run(src) == 1

    def test_loop_counts(self):
        source = """
            mov r0, 0
        top:
            add r0, 2
            jlt r0, 10, top
            exit
        """
        assert run(source) == 10


class TestMemory:
    def test_stack_store_load_all_sizes(self):
        source = """
            mov r1, 0x1122334455667788
            lddw r1, 0x1122334455667788
            stxdw [r10-8], r1
            ldxw r2, [r10-8]
            ldxh r3, [r10-8]
            ldxb r4, [r10-8]
            mov r0, r2
            add r0, r3
            add r0, r4
            exit
        """
        assert run(source) == 0x55667788 + 0x7788 + 0x88

    def test_store_immediate(self):
        assert run("stdw [r10-8], 99\nldxdw r0, [r10-8]\nexit") == 99

    def test_out_of_stack_read_faults(self):
        with pytest.raises(SandboxViolation):
            run(f"ldxdw r0, [r10-{STACK_SIZE + 8}]\nexit")

    def test_null_dereference_faults(self):
        with pytest.raises(SandboxViolation):
            run("mov r1, 0\nldxdw r0, [r1]\nexit")

    def test_read_only_region_rejects_writes(self):
        memory = VmMemory()
        region = MemoryRegion(0x7000_0000, 16, writable=False, label="ro")
        memory.attach(region)
        with pytest.raises(SandboxViolation):
            run("lddw r1, 0x70000000\nstdw [r1], 1\nexit", memory=memory)

    def test_attached_region_readable(self):
        memory = VmMemory()
        region = MemoryRegion(0x7000_0000, 16, writable=False, label="ro")
        region.data[0:4] = (1234).to_bytes(4, "little")
        memory.attach(region)
        assert run("lddw r1, 0x70000000\nldxw r0, [r1]\nexit", memory=memory) == 1234

    def test_overlapping_region_rejected(self):
        memory = VmMemory()
        with pytest.raises(ValueError):
            memory.attach(MemoryRegion(memory.stack.base, 8))

    def test_heap_alloc_and_reset(self):
        memory = VmMemory(heap_size=64)
        address = memory.alloc_bytes(b"hello")
        assert memory.read_bytes(address, 5) == b"hello"
        memory.reset_heap()
        assert memory.heap_used == 0
        # The contract is that *allocated* blocks read as zeros, not that
        # freed memory is scrubbed at reset time (lazy zeroing defers it).
        fresh = memory.alloc(8)
        assert fresh == address
        assert memory.read_bytes(fresh, 8) == b"\x00" * 8

    def test_heap_lazy_zero_partial_reuse(self):
        memory = VmMemory(heap_size=64)
        memory.alloc_bytes(b"\xff" * 32)
        memory.reset_heap()
        # A smaller allocation only scrubs its own span; the rest of the
        # dirty watermark is scrubbed when later allocations reach it.
        first = memory.alloc(8)
        assert memory.read_bytes(first, 8) == b"\x00" * 8
        second = memory.alloc(24)
        assert memory.read_bytes(second, 24) == b"\x00" * 24

    def test_heap_eager_zero_mode(self):
        memory = VmMemory(heap_size=64, lazy_zero=False)
        address = memory.alloc_bytes(b"hello")
        memory.reset_heap()
        # Pre-overhaul behaviour, kept for the ablation's legacy arm:
        # freed memory is scrubbed immediately.
        assert memory.read_bytes(address, 5) == b"\x00" * 5

    def test_heap_exhaustion(self):
        memory = VmMemory(heap_size=16)
        memory.alloc(16)
        with pytest.raises(SandboxViolation):
            memory.alloc(8)

    def test_cstring_read(self):
        memory = VmMemory()
        address = memory.alloc_bytes(b"abc\x00junk")
        assert memory.read_cstring(address) == b"abc"


class TestCallsAndBudget:
    def test_helper_result_in_r0(self):
        helpers = HelperTable()
        helpers.register(1, "f", lambda vm, *a: 1234)
        assert run("call f\nexit", helpers=helpers) == 1234

    def test_helper_receives_r1_to_r5(self):
        seen = {}
        helpers = HelperTable()
        helpers.register(1, "f", lambda vm, *a: seen.setdefault("args", a) and 0 or 0)
        run("mov r1, 1\nmov r2, 2\nmov r3, 3\nmov r4, 4\nmov r5, 5\ncall f\nexit",
            helpers=helpers)
        assert seen["args"] == (1, 2, 3, 4, 5)

    def test_call_clobbers_argument_registers(self):
        helpers = HelperTable()
        helpers.register(1, "f", lambda vm, *a: 0)
        assert run("mov r1, 9\ncall f\nmov r0, r1\nexit", helpers=helpers) == 0

    def test_unknown_helper_faults(self):
        with pytest.raises(ExecutionError):
            run("call 42\nexit")

    def test_helper_error_propagates(self):
        helpers = HelperTable()

        def bad(vm, *a):
            raise HelperError("nope")

        helpers.register(1, "f", bad)
        with pytest.raises(HelperError):
            run("call f\nexit", helpers=helpers)

    def test_instruction_budget(self):
        source = """
            mov r0, 0
        top:
            add r0, 1
            ja top
        """
        with pytest.raises(ExecutionError, match="budget"):
            run(source + "\nexit", budget=100)

    def test_arguments_passed_to_program(self):
        assert run("mov r0, r1\nadd r0, r2\nexit", r1=3, r2=4) == 7


class TestHelperTable:
    def test_duplicate_id_rejected(self):
        table = HelperTable()
        table.register(1, "a", lambda vm: 0)
        with pytest.raises(ValueError):
            table.register(1, "b", lambda vm: 0)

    def test_duplicate_name_rejected(self):
        table = HelperTable()
        table.register(1, "a", lambda vm: 0)
        with pytest.raises(ValueError):
            table.register(2, "a", lambda vm: 0)

    def test_restricted_subset(self):
        table = HelperTable()
        table.register(1, "a", lambda vm: 0)
        table.register(2, "b", lambda vm: 0)
        sub = table.restricted(["a"])
        assert 1 in sub and 2 not in sub

    def test_restricted_unknown_name(self):
        with pytest.raises(KeyError):
            HelperTable().restricted(["ghost"])
