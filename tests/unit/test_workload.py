"""Unit tests for the synthetic workload generator and MRT format."""

import io

import pytest

from repro.bgp.constants import AttrTypeCode
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.mrt import MrtError, MrtPeer, RibEntry, read_table, write_table
from repro.workload import AsTopology, RibGenerator, build_updates, origins_of


class TestTopology:
    def test_generation_deterministic(self):
        a = AsTopology.generate(n_ases=100, seed=5)
        b = AsTopology.generate(n_ases=100, seed=5)
        assert a.all_ases() == b.all_ases()
        assert all(a.providers_of(asn) == b.providers_of(asn) for asn in a.all_ases())

    def test_structure(self):
        topology = AsTopology.generate(n_ases=100, n_tier1=5, seed=5)
        assert len(topology.tier1) == 5
        assert len(topology.all_ases()) == 100
        assert topology.stubs  # there are stubs
        for stub in topology.stubs:
            assert topology.providers_of(stub), "stubs must have providers"

    def test_paths_end_at_origin(self):
        import random

        topology = AsTopology.generate(n_ases=100, seed=5)
        rng = random.Random(1)
        for stub in topology.stubs[:20]:
            path = topology.path_to_tier1(stub, rng)
            assert path[-1] == stub
            assert len(set(path)) == len(path)  # loop free

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            AsTopology.generate(n_ases=5, n_tier1=8)


class TestRibGenerator:
    def test_count_and_uniqueness(self):
        routes = RibGenerator(n_routes=500, seed=3).generate()
        assert len(routes) == 500
        assert len({r.prefix for r in routes}) == 500

    def test_deterministic(self):
        assert (
            RibGenerator(n_routes=50, seed=3).generate()
            == RibGenerator(n_routes=50, seed=3).generate()
        )

    def test_prefix_length_mix(self):
        routes = RibGenerator(n_routes=3000, seed=3).generate()
        slash24 = sum(1 for r in routes if r.prefix.length == 24)
        assert 0.5 < slash24 / len(routes) < 0.7  # ≈59% like RIS

    def test_paths_short_and_loop_free(self):
        routes = RibGenerator(n_routes=300, seed=3).generate()
        for route in routes:
            assert 1 <= len(route.as_path) <= 12
        lengths = [len(set(r.as_path)) >= len(r.as_path) - 1 for r in routes]
        assert all(lengths)  # at most one duplicate (prepending)

    def test_origins_helper(self):
        routes = RibGenerator(n_routes=20, seed=3).generate()
        origins = origins_of(routes)
        assert len(origins) == 20
        assert all(origin == route.origin_asn for (_, origin), route in zip(origins, routes))


class TestBuildUpdates:
    def test_all_prefixes_present_once(self):
        routes = RibGenerator(n_routes=400, seed=3).generate()
        updates = build_updates(routes, next_hop=parse_ipv4("10.0.0.9"))
        prefixes = [p for u in updates for p in u.nlri]
        assert sorted(prefixes) == sorted(r.prefix for r in routes)

    def test_packing_shares_updates(self):
        routes = RibGenerator(n_routes=400, seed=3).generate()
        updates = build_updates(routes, next_hop=1)
        assert len(updates) < len(routes)  # attribute sharing packs NLRI

    def test_ibgp_updates_have_local_pref(self):
        routes = RibGenerator(n_routes=10, seed=3).generate()
        updates = build_updates(routes, next_hop=1, session="ibgp")
        assert all(u.attribute(AttrTypeCode.LOCAL_PREF) is not None for u in updates)

    def test_ebgp_updates_prepend_sender(self):
        routes = RibGenerator(n_routes=10, seed=3).generate()
        updates = build_updates(routes, next_hop=1, session="ebgp", sender_asn=65100)
        for update in updates:
            path = update.attribute(AttrTypeCode.AS_PATH).as_path()
            assert path.first_asn() == 65100
            assert update.attribute(AttrTypeCode.LOCAL_PREF) is None

    def test_max_prefixes_respected(self):
        routes = RibGenerator(n_routes=300, seed=3).generate()
        updates = build_updates(routes, next_hop=1, max_prefixes_per_update=10)
        assert all(len(u.nlri) <= 10 for u in updates)

    def test_bad_session_kind(self):
        with pytest.raises(ValueError):
            build_updates([], next_hop=1, session="maybe")

    def test_updates_fit_wire_limit(self):
        routes = RibGenerator(n_routes=500, seed=3).generate()
        for update in build_updates(routes, next_hop=1):
            assert len(update.encode()) <= 4096


class TestMrt:
    def _sample(self):
        routes = RibGenerator(n_routes=40, seed=3).generate()
        updates = build_updates(routes, next_hop=parse_ipv4("10.0.0.9"))
        peers = [MrtPeer(parse_ipv4("10.0.0.9"), parse_ipv4("10.0.0.9"), 65100)]
        entries = [
            RibEntry(prefix, 0, 1_600_000_000, update.attributes)
            for update in updates
            for prefix in update.nlri
        ]
        return peers, entries

    def test_roundtrip(self):
        peers, entries = self._sample()
        stream = io.BytesIO()
        write_table(stream, peers, entries, collector_id=7)
        stream.seek(0)
        read_peers, read_entries = read_table(stream)
        assert read_peers == peers
        assert read_entries == entries

    def test_missing_index_rejected(self):
        with pytest.raises(MrtError):
            read_table(io.BytesIO(b""))

    def test_truncated_payload_rejected(self):
        peers, entries = self._sample()
        stream = io.BytesIO()
        write_table(stream, peers, entries[:1])
        data = stream.getvalue()[:-3]
        with pytest.raises(MrtError):
            read_table(io.BytesIO(data))

    def test_routes_from_mrt_reconstructs_specs(self, tmp_path):
        from repro.workload import routes_from_mrt

        peers, entries = self._sample()
        path = tmp_path / "table.mrt"
        with open(path, "wb") as handle:
            write_table(handle, peers, entries)
        routes = routes_from_mrt(str(path))
        assert len(routes) == len(entries)
        by_prefix = {entry.prefix for entry in entries}
        assert {route.prefix for route in routes} == by_prefix
        assert all(route.as_path for route in routes)

    def test_routes_from_mrt_feeds_harness(self, tmp_path):
        from repro.sim.harness import ConvergenceHarness
        from repro.workload import routes_from_mrt

        peers, entries = self._sample()
        path = tmp_path / "table.mrt"
        with open(path, "wb") as handle:
            write_table(handle, peers, entries)
        routes = routes_from_mrt(str(path))
        harness = ConvergenceHarness("bird", "plain", "native", routes)
        harness.run()
        assert len(harness.collector) == len(routes)

    def test_foreign_record_types_tolerated(self):
        import struct

        peers, entries = self._sample()
        stream = io.BytesIO()
        # A BGP4MP (type 16) record first: should be skipped.
        stream.write(struct.pack("!IHHI", 0, 16, 4, 2) + b"ab")
        write_table(stream, peers, entries[:2])
        stream.seek(0)
        read_peers, read_entries = read_table(stream)
        assert len(read_entries) == 2


class TestStreamingMrt:
    """``iter_routes_from_mrt`` — the generator twin of
    ``routes_from_mrt`` the sharded replay feeds from."""

    def _table_bytes(self, n_routes=60, seed=3):
        routes = RibGenerator(n_routes=n_routes, seed=seed).generate()
        updates = build_updates(routes, next_hop=parse_ipv4("10.0.0.9"))
        peers = [MrtPeer(parse_ipv4("10.0.0.9"), parse_ipv4("10.0.0.9"), 65100)]
        entries = (
            RibEntry(prefix, 0, 1_600_000_000, update.attributes)
            for update in updates
            for prefix in update.nlri
        )
        stream = io.BytesIO()
        write_table(stream, peers, entries)
        return routes, stream.getvalue()

    def test_streaming_matches_list(self, tmp_path):
        from repro.workload import iter_routes_from_mrt, routes_from_mrt

        _, data = self._table_bytes()
        path = tmp_path / "table.mrt"
        path.write_bytes(data)
        streamed = list(iter_routes_from_mrt(str(path)))
        assert streamed == routes_from_mrt(str(path))
        # A binary handle works just like a path.
        assert list(iter_routes_from_mrt(io.BytesIO(data))) == streamed

    def test_streaming_is_lazy(self):
        from repro.workload import iter_routes_from_mrt

        routes, data = self._table_bytes()
        iterator = iter_routes_from_mrt(io.BytesIO(data))
        first = next(iterator)
        assert first.prefix in {route.prefix for route in routes}
        # The generator still has the rest of the table to give.
        assert sum(1 for _ in iterator) == len(routes) - 1

    def test_streaming_missing_index_raises(self):
        from repro.workload import iter_routes_from_mrt

        with pytest.raises(MrtError):
            list(iter_routes_from_mrt(io.BytesIO(b"")))

    @pytest.mark.slow
    def test_large_table_roundtrip_100k(self, tmp_path):
        """gen-table-scale round-trip: 100k routes survive MRT encode →
        streaming decode with attributes intact."""
        from repro.workload import iter_routes_from_mrt

        routes = RibGenerator(n_routes=100_000, seed=9).generate()
        updates = build_updates(routes, next_hop=parse_ipv4("10.0.0.9"))
        peers = [MrtPeer(parse_ipv4("10.0.0.9"), parse_ipv4("10.0.0.9"), 65100)]
        path = tmp_path / "full.mrt"
        with open(path, "wb") as handle:
            write_table(
                handle,
                peers,
                (
                    RibEntry(prefix, 0, 1_600_000_000, update.attributes)
                    for update in updates
                    for prefix in update.nlri
                ),
            )
        expected = {
            route.prefix: (route.as_path, route.origin, route.med)
            for route in routes
        }
        count = 0
        for spec in iter_routes_from_mrt(str(path)):
            assert expected[spec.prefix] == (spec.as_path, spec.origin, spec.med)
            count += 1
        assert count == len(routes)
