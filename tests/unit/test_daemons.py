"""Unit tests for daemon behavior, parametrized over both hosts.

Both PyFRR and PyBIRD implement the same RFC 4271 machine on different
internals; every test here runs against each.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import (
    make_as_path,
    make_communities,
    make_next_hop,
    make_origin,
)
from repro.bgp.aspath import AsPath
from repro.bgp.constants import AttrTypeCode, Origin, WellKnownCommunity
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import format_ipv4, parse_ipv4
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon

PREFIX = Prefix.parse("203.0.113.0/24")


@pytest.fixture(params=[FrrDaemon, BirdDaemon], ids=["frr", "bird"])
def daemon_cls(request):
    return request.param


def make_daemon(daemon_cls, **kwargs):
    defaults = dict(asn=65001, router_id="1.1.1.1", local_address="10.0.0.1")
    defaults.update(kwargs)
    return daemon_cls(**defaults)


def wire_peer(daemon, address="10.0.0.9", asn=65100, **kwargs):
    """Add an established peer; returns (neighbor, sent-messages list)."""
    sent = []
    neighbor = daemon.add_neighbor(address, asn, sent.append, **kwargs)
    daemon._established[parse_ipv4(address)] = True
    neighbor.established = True
    return neighbor, sent


def ebgp_update(prefixes=(PREFIX,), as_path=(65100,), next_hop="10.0.0.9", extra=()):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence(as_path)),
        make_next_hop(parse_ipv4(next_hop)),
    ]
    attrs.extend(extra)
    return UpdateMessage(attributes=attrs, nlri=list(prefixes))


class TestImport:
    def test_update_lands_in_loc_rib(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", ebgp_update())
        route = daemon.loc_rib.lookup(PREFIX)
        assert route is not None
        assert route.next_hop() == parse_ipv4("10.0.0.9")

    def test_as_loop_rejected(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", ebgp_update(as_path=(65100, 65001)))
        assert daemon.loc_rib.lookup(PREFIX) is None
        assert daemon.stats["loop_rejected"] == 1

    def test_withdrawal_removes_route(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", ebgp_update())
        daemon.receive_message("10.0.0.9", UpdateMessage(withdrawn=[PREFIX]))
        assert daemon.loc_rib.lookup(PREFIX) is None

    def test_implicit_replacement(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", ebgp_update(as_path=(65100, 65200)))
        daemon.receive_message("10.0.0.9", ebgp_update(as_path=(65100,)))
        route = daemon.loc_rib.lookup(PREFIX)
        assert route.as_path_length() == 1

    def test_best_of_two_peers(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        wire_peer(daemon, "10.0.0.8", 65200)
        daemon.receive_message("10.0.0.9", ebgp_update(as_path=(65100, 65300)))
        daemon.receive_message(
            "10.0.0.8", ebgp_update(as_path=(65200,), next_hop="10.0.0.8")
        )
        route = daemon.loc_rib.lookup(PREFIX)
        assert route.source.peer_asn == 65200  # shorter path wins

    def test_eor_counted(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", UpdateMessage.end_of_rib())
        assert daemon.stats["eor_received"] == 1

    def test_unknown_peer_ignored(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.receive_message("99.99.99.99", ebgp_update())
        assert daemon.stats["unknown_peer"] == 1


class TestExport:
    def test_ebgp_export_prepends_and_rewrites_nexthop(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.receive_message("10.0.0.9", ebgp_update())
        update = _last_update(sent)
        path = update.attribute(AttrTypeCode.AS_PATH).as_path()
        assert list(path.asn_iter()) == [65001, 65100]
        next_hop = update.attribute(AttrTypeCode.NEXT_HOP).as_u32()
        assert next_hop == daemon.local_address
        assert update.attribute(AttrTypeCode.LOCAL_PREF) is None

    def test_not_sent_back_to_source(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        _, sent = wire_peer(daemon, "10.0.0.9", 65100)
        daemon.receive_message("10.0.0.9", ebgp_update())
        assert _last_update(sent) is None

    def test_ibgp_split_horizon(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65001)  # iBGP source
        _, sent = wire_peer(daemon, "10.0.0.5", 65001)  # iBGP dest
        daemon.receive_message(
            "10.0.0.9", ebgp_update(as_path=(), extra=())
        )
        assert _last_update(sent) is None

    def test_ibgp_export_adds_local_pref(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)  # eBGP source
        _, sent = wire_peer(daemon, "10.0.0.5", 65001)  # iBGP dest
        daemon.receive_message("10.0.0.9", ebgp_update())
        update = _last_update(sent)
        assert update.attribute(AttrTypeCode.LOCAL_PREF).as_u32() == 100

    def test_nexthop_self_toward_ibgp(self, daemon_cls):
        daemon = make_daemon(daemon_cls)  # nexthop_self defaults True
        wire_peer(daemon, "10.0.0.9", 65100)
        _, sent = wire_peer(daemon, "10.0.0.5", 65001)
        daemon.receive_message("10.0.0.9", ebgp_update())
        update = _last_update(sent)
        assert update.attribute(AttrTypeCode.NEXT_HOP).as_u32() == daemon.local_address

    def test_no_export_community_honoured(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        update = ebgp_update(
            extra=[make_communities([int(WellKnownCommunity.NO_EXPORT)])]
        )
        daemon.receive_message("10.0.0.9", update)
        assert _last_update(sent) is None
        assert daemon.stats["export_rejected"] >= 1

    def test_withdrawal_propagates(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.receive_message("10.0.0.9", ebgp_update())
        sent.clear()
        daemon.receive_message("10.0.0.9", UpdateMessage(withdrawn=[PREFIX]))
        update = _last_update(sent)
        assert update is not None and PREFIX in update.withdrawn

    def test_session_up_sends_table_and_eor(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        daemon.receive_message("10.0.0.9", ebgp_update())
        sent = []
        daemon.add_neighbor("10.0.0.5", 65500, sent.append)
        daemon.session_up("10.0.0.5")
        updates = _all_updates(sent)
        assert any(PREFIX in u.nlri for u in updates)
        assert any(u.is_end_of_rib() for u in updates)

    def test_session_down_flushes_and_withdraws(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65100)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.receive_message("10.0.0.9", ebgp_update())
        sent.clear()
        daemon.session_down("10.0.0.9")
        update = _last_update(sent)
        assert update is not None and PREFIX in update.withdrawn
        assert daemon.loc_rib.lookup(PREFIX) is None


class TestRouteRefresh:
    def test_refresh_resends_adj_rib_out(self, daemon_cls):
        from repro.bgp.messages import RouteRefreshMessage

        daemon = make_daemon(daemon_cls)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.originate(PREFIX)
        sent.clear()
        daemon.receive_message("10.0.0.5", RouteRefreshMessage())
        updates = _all_updates(sent)
        assert any(PREFIX in u.nlri for u in updates)
        assert any(u.is_end_of_rib() for u in updates)
        assert daemon.stats["route_refresh_received"] == 1

    def test_refresh_respects_export_policy(self, daemon_cls):
        from repro.bgp.messages import RouteRefreshMessage
        from repro.bgp.policy import PrefixListFilter

        daemon = make_daemon(daemon_cls)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.export_chain.append(PrefixListFilter([PREFIX]))
        daemon.originate(PREFIX)
        sent.clear()
        daemon.receive_message("10.0.0.5", RouteRefreshMessage())
        updates = _all_updates(sent)
        assert not any(PREFIX in u.nlri for u in updates)


class TestLocalRoutes:
    def test_originate_and_withdraw(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        _, sent = wire_peer(daemon, "10.0.0.5", 65500)
        daemon.originate(PREFIX)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        update = _last_update(sent)
        assert PREFIX in update.nlri
        sent.clear()
        daemon.withdraw_local(PREFIX)
        assert PREFIX in _last_update(sent).withdrawn

    def test_local_route_preferred_over_ibgp(self, daemon_cls):
        # Local routes win the eBGP-over-iBGP rung (LOCAL source ranks
        # as not-iBGP and has no peers to lose tie-breaks to).
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon, "10.0.0.9", 65001)
        daemon.receive_message(
            "10.0.0.9",
            UpdateMessage(
                attributes=[
                    make_origin(Origin.IGP),
                    make_as_path(AsPath()),
                    make_next_hop(parse_ipv4("10.0.0.9")),
                ],
                nlri=[PREFIX],
            ),
        )
        daemon.originate(PREFIX)
        assert daemon.loc_rib.lookup(PREFIX).source is None


class TestSnapshots:
    def test_loc_rib_snapshot_neutral_form(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        wire_peer(daemon)
        daemon.receive_message("10.0.0.9", ebgp_update())
        snapshot = daemon.loc_rib_snapshot()
        assert PREFIX in snapshot
        codes = [attr.type_code for attr in snapshot[PREFIX]]
        assert codes == sorted(codes)

    def test_log_ring_bounded(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        for index in range(11_000):
            daemon.log(f"line {index}")
        assert len(daemon.log_messages) <= 10_000


def _all_updates(sent):
    from repro.bgp.messages import split_stream

    buffer = bytearray(b"".join(sent))
    return [m for m in split_stream(buffer) if isinstance(m, UpdateMessage)]


def _last_update(sent):
    updates = _all_updates(sent)
    return updates[-1] if updates else None
