"""Verifier stack-bounds checks, driven by the fuzz generators.

The static verifier rejects any direct ``[r10+off]`` access that falls
outside the 512-byte frame *at verification time*; runtime pointer
escapes (a heap pointer walked out of its region) pass the verifier and
must instead fault identically on both engines.
"""

import pytest

from repro.ebpf.assembler import assemble
from repro.ebpf.memory import STACK_SIZE, SandboxViolation, VmMemory
from repro.ebpf.verifier import VerifierConfig, VerifierError, verify
from repro.ebpf.vm import VirtualMachine
from repro.fuzz.gen import (
    FUZZ_HELPER_IDS,
    gen_engine_case,
    gen_oob_pointer_source,
    gen_oob_stack_source,
)
from repro.fuzz.oracles import make_fuzz_helpers

_CONFIG = VerifierConfig(
    max_instructions=4096,
    allow_loops=True,
    allowed_helpers=set(FUZZ_HELPER_IDS.values()),
)


def _verify(source: str) -> None:
    verify(assemble(source, FUZZ_HELPER_IDS), _CONFIG)


# -- hand-written boundary cases ----------------------------------------


@pytest.mark.parametrize(
    "line",
    [
        "stxdw [r10-512], r1",  # bottom of the frame, exactly in bounds
        "stxb [r10-1], r1",     # top byte of the frame
        "stxw [r10-4], r1",     # word ending exactly at r10
        "ldxdw r0, [r10-8]",
        "ldxb r0, [r10-512]",
    ],
)
def test_boundary_accesses_accepted(line):
    _verify(f"mov r1, 1\n{line}\nmov r0, 0\nexit")


@pytest.mark.parametrize(
    "line",
    [
        "stxdw [r10+0], r1",    # at/above r10 is out of frame
        "stxb [r10+8], r1",
        f"stxdw [r10-{STACK_SIZE + 8}], r1",  # below the frame
        "ldxdw r0, [r10-4]",    # 8-byte load straddling the top
        "stxw [r10-2], r1",     # 4-byte store straddling the top
        f"ldxb r0, [r10-{STACK_SIZE + 1}]",
    ],
)
def test_out_of_frame_accesses_rejected(line):
    with pytest.raises(VerifierError, match="stack access out of bounds"):
        _verify(f"mov r1, 1\n{line}\nmov r0, 0\nexit")


# -- generator-produced programs ----------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_generated_oob_stack_programs_rejected(seed):
    source = gen_oob_stack_source(seed)
    with pytest.raises(VerifierError, match="stack access out of bounds"):
        _verify(source)


@pytest.mark.parametrize("seed", range(10))
def test_generated_valid_programs_verify(seed):
    # gen_engine_case verifies internally; re-assert on the shipped source
    # so a verifier regression can't hide behind the generator's retries.
    case = gen_engine_case(seed)
    _verify(case.source)


@pytest.mark.parametrize("seed", range(8))
def test_oob_pointer_passes_verifier_faults_at_runtime(seed):
    # Pointer escapes are a *runtime* property: the verifier can't see
    # them (the offset lives in a register), the sandbox must.
    source = gen_oob_pointer_source(seed)
    program = assemble(source, FUZZ_HELPER_IDS)
    verify(program, _CONFIG)

    outcomes = []
    for jit in (False, True):
        calls = []
        vm = VirtualMachine(
            program,
            helpers=make_fuzz_helpers(calls),
            memory=VmMemory(heap_size=4096),
            step_budget=4096,
            jit=jit,
        )
        with pytest.raises(SandboxViolation) as excinfo:
            vm.run()
        outcomes.append((str(excinfo.value), vm.steps_executed, tuple(calls)))
    assert outcomes[0] == outcomes[1]
