"""Unit tests for the native execution tier (repro.ebpf.native).

Four invariants carry the tier:

* observable parity — result, step count, helper-call *sequence* and
  heap image match the interpreter exactly, on handwritten programs
  here and on every paper use-case plugin (block-level profile
  agreement, the same bar the JIT is held to in test_profiler);
* graceful demotion — programs the structurer declines (pinned
  opcodes, oversized programs, irreducible control flow past the bail
  budget) fall back to the JIT with a recorded reason, never an error;
* sandbox preservation — faults, budget blowouts and quarantine
  behave identically under ``tier="native"``;
* the ``VmmConfig(tier=...)`` knob subsumes the legacy ``engine=``
  boolean-era kwarg as a deprecated alias.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.aspath import AsPath
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.core import Manifest
from repro.core.vmm import VmmConfig
from repro.ebpf import native
from repro.ebpf.assembler import assemble
from repro.ebpf.isa import Instruction
from repro.ebpf.memory import VmMemory
from repro.ebpf.native import NativeUnsupported, translate_native
from repro.ebpf.vm import ExecutionError, VirtualMachine
from repro.fuzz.gen import FUZZ_HELPER_IDS
from repro.fuzz.oracles import make_fuzz_helpers
from repro.frr import FrrDaemon
from repro.telemetry import QuarantinePolicy

from test_profiler import SCENARIOS

PREFIX = Prefix.parse("203.0.113.0/24")

CRASHING = """
u64 crash(u64 args) {
    return *(u64 *)(0);
}
"""

SPINNING = """
u64 spin(u64 args) {
    u64 i = 0;
    while (1) {
        i += 1;
    }
    return i;
}
"""


def manifest_for(name, source, helpers=("next", "get_arg"), seq=0):
    return Manifest(
        name=name,
        codes=[
            {
                "name": name,
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": seq,
                "helpers": list(helpers),
                "source": source,
            }
        ],
    )


def feed(daemon, prefix=PREFIX):
    update = UpdateMessage(
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65100])),
            make_next_hop(parse_ipv4("10.0.0.9")),
        ],
        nlri=[prefix],
    )
    daemon.receive_message("10.0.0.9", update)


def make_daemon(daemon_cls, vmm_config=None):
    daemon = daemon_cls(asn=65001, router_id="1.1.1.1", vmm_config=vmm_config)
    daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
    daemon._established[parse_ipv4("10.0.0.9")] = True
    return daemon

#: Loop + promoted stack slot + helper traffic.
LOOP_SRC = """
    mov r6, 0
    mov r7, 0
    stxdw [r10-8], r7
loop:
    mov r1, r6
    mov r2, 3
    call probe
    ldxdw r3, [r10-8]
    add r3, r0
    stxdw [r10-8], r3
    add r6, 1
    jne r6, 8, loop
    ldxdw r0, [r10-8]
    and r0, 0xffff
    exit
"""

#: If/else diamond feeding a heap write (heap-image parity).
DIAMOND_SRC = """
    mov r6, 5
    jeq r6, 5, then
    mov r7, 1
    ja join
then:
    mov r7, 2
join:
    call halloc
    mov r8, r0
    stxdw [r8+0], r7
    ldxdw r0, [r8+0]
    exit
"""

#: Dereferences an unmapped address: must fault identically.
WILD_SRC = """
    lddw r6, 0x50000000
    ldxdw r0, [r6+0]
    exit
"""

#: Jumps *into* a loop body past its header: irreducible control flow
#: the structurer cannot express, exercising the bail/demotion path.
IRREDUCIBLE_SRC = """
    mov r6, 1
    jeq r6, 1, inside
loop:
    add r6, 1
inside:
    add r6, 2
    jlt r6, 40, loop
    mov r0, r6
    exit
"""


def _run(source, tier, step_budget=100_000):
    """One VM invocation; returns the full observable outcome."""
    program = assemble(source, FUZZ_HELPER_IDS)
    calls = []
    memory = VmMemory(heap_size=4096)
    vm = VirtualMachine(
        program,
        helpers=make_fuzz_helpers(calls),
        memory=memory,
        step_budget=step_budget,
        tier=tier,
    )
    result = vm.run()
    heap = bytes(memory.heap_region.data[: memory.heap_used])
    return vm, (result, vm.steps_executed, vm.helper_calls, list(calls), heap)


class TestVmParity:
    """Result, steps, helper sequence and heap image match interp."""

    @pytest.mark.parametrize(
        "source", [LOOP_SRC, DIAMOND_SRC, IRREDUCIBLE_SRC], ids=["loop", "diamond", "irreducible"]
    )
    def test_outcome_matches_interp(self, source):
        _, interp = _run(source, "interp")
        vm, outcome = _run(source, "native")
        assert outcome == interp

    def test_loop_compiles_native(self):
        vm, _ = _run(LOOP_SRC, "native")
        assert vm.tier_used == "native"
        assert vm.native_fallback_reason is None
        assert vm.native_info.loops == 1
        assert vm.native_info.bail_sites == 0
        assert "while True:" in vm.native_info.source

    def test_sandbox_fault_matches_interp(self):
        errors = {}
        for tier in ("interp", "native"):
            with pytest.raises(Exception) as excinfo:
                _run(WILD_SRC, tier)
            errors[tier] = (type(excinfo.value), str(excinfo.value))
        assert errors["interp"] == errors["native"]

    def test_budget_blowout_raised_by_both_tiers(self):
        # Per-block vs per-step budget checks legitimately disagree on
        # the faulting pc (the documented engine divergence) — but both
        # tiers must abort with a budget error.
        for tier in ("interp", "native"):
            with pytest.raises(ExecutionError, match="budget"):
                _run("loop:\n    ja loop\n", tier, step_budget=1000)

    def test_irreducible_flow_demotes_not_errors(self):
        vm, _ = _run(IRREDUCIBLE_SRC, "native")
        # Whichever way the policy lands — runtime bail sites or a
        # whole-program fallback — it must be visible in attribution.
        assert vm.tier_used == "jit" or vm.native_info.bail_sites > 0


class TestPluginParity:
    """Native tier agrees with the interpreter on all five paper
    use-case plugins, at block-profile granularity (profiled runs)."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_block_profiles_and_state_agree(self, name):
        interp_daemon = SCENARIOS[name]("interp")
        native_daemon = SCENARIOS[name]("native")
        interp = {
            (p.point, p.extension): p for p in interp_daemon.profiler.profiles()
        }
        nat = {
            (p.point, p.extension): p for p in native_daemon.profiler.profiles()
        }
        assert interp, f"{name}: no extension executed"
        assert interp.keys() == nat.keys()
        for key in interp:
            profile_i, profile_n = interp[key], nat[key]
            assert profile_n.engine == "native", (
                f"{key}: fell back ({profile_n.fallback_reason})"
            )
            assert profile_i.runs == profile_n.runs > 0
            assert profile_i.block_profile() == profile_n.block_profile()
            assert profile_i.instructions() == profile_n.instructions() > 0
            assert profile_i.helper_count == profile_n.helper_count
            assert profile_i.heap_hwm == profile_n.heap_hwm
            assert profile_i.stack_hwm == profile_n.stack_hwm
        assert interp_daemon.vmm.stats() == native_daemon.vmm.stats()
        assert len(interp_daemon.loc_rib) == len(native_daemon.loc_rib)


class TestFallback:
    """Unsupported programs demote to the JIT with a recorded reason."""

    def test_pinned_opcode_falls_back(self, monkeypatch):
        program = assemble(LOOP_SRC, FUZZ_HELPER_IDS)
        monkeypatch.setattr(
            native, "PINNED_OPCODES", frozenset({program[0].opcode})
        )
        _, interp = _run(LOOP_SRC, "interp")
        vm, outcome = _run(LOOP_SRC, "native")
        assert vm.tier_used == "jit"
        assert "pinned" in vm.native_fallback_reason
        assert vm.native_info is None
        assert outcome == interp  # the fallback still runs correctly

    def test_oversized_program_falls_back(self):
        mov = Instruction(0xB7, 0, 0, 0, 7)
        exit_ = Instruction(0x95, 0, 0, 0, 0)
        program = [mov] * (native.MAX_PROGRAM_SLOTS + 1) + [exit_]
        vm = VirtualMachine(program, step_budget=10, tier="native")
        vm.prepare()
        assert vm.tier_used == "jit"
        assert "too large" in vm.native_fallback_reason

    def test_translate_native_raises_on_pinned(self, monkeypatch):
        program = assemble(DIAMOND_SRC, FUZZ_HELPER_IDS)
        monkeypatch.setattr(
            native, "PINNED_OPCODES", frozenset({program[0].opcode})
        )
        memory = VmMemory(heap_size=4096)
        vm = VirtualMachine(program, memory=memory, step_budget=10)
        with pytest.raises(NativeUnsupported, match="pinned"):
            translate_native(program, vm.helpers, memory, 10, vm)


class TestNativeUnderFaults:
    """Quarantine and fault injection behave identically on the
    compiled native tier."""

    def test_crashing_code_falls_back_to_host(self):
        daemon = make_daemon(FrrDaemon, VmmConfig(tier="native"))
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["crasher"]["errors"] == 1

    def test_spinner_hits_budget(self):
        daemon = make_daemon(
            FrrDaemon, VmmConfig(step_budget=10_000, tier="native")
        )
        daemon.attach_manifest(manifest_for("spinner", SPINNING, helpers=()))
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["spinner"]["errors"] == 1
        assert any("budget" in line for line in daemon.log_messages)

    def test_quarantine_opens_on_native_tier(self):
        config = VmmConfig(
            tier="native", quarantine=QuarantinePolicy(error_threshold=2)
        )
        daemon = make_daemon(FrrDaemon, config)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        for index in range(3):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        assert "crasher" in daemon.vmm.quarantined_codes()


class TestVmmConfigTier:
    """tier= knob semantics and the deprecated engine= alias."""

    def test_default_is_jit(self):
        config = VmmConfig()
        assert config.tier == "jit"
        assert config.engine == "jit"

    def test_engine_alias_sets_tier(self):
        assert VmmConfig(engine="interp").tier == "interp"
        assert VmmConfig(engine="native").tier == "native"

    def test_tier_reflected_by_engine_property(self):
        assert VmmConfig(tier="native").engine == "native"

    def test_conflicting_alias_rejected(self):
        with pytest.raises(ValueError, match="deprecated alias"):
            VmmConfig(engine="jit", tier="native")

    def test_matching_alias_accepted(self):
        assert VmmConfig(engine="interp", tier="interp").tier == "interp"

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError, match="bad tier"):
            VmmConfig(tier="warp")

    def test_engine_property_read_only(self):
        config = VmmConfig()
        with pytest.raises(AttributeError):
            config.engine = "interp"

    def test_vmm_tiers_attribution(self):
        daemon = make_daemon(FrrDaemon, VmmConfig(tier="native"))
        daemon.attach_manifest(
            manifest_for("selective", "u64 f(u64 a) { return 0; }", helpers=())
        )
        tiers = daemon.vmm.tiers()
        assert tiers["selective"]["requested"] == "native"
        assert tiers["selective"]["used"] == "native"
        assert tiers["selective"]["fallback_reason"] is None
        assert tiers["selective"]["native"]["structured_blocks"] >= 1
