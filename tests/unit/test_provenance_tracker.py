"""Unit tests for repro.telemetry.provenance / spans.

Covers the span recorder (parenting, cross-recorder trace adoption,
eviction accounting), the provenance tracker's story machinery, the
oscillation detector, and the daemon-level toggle that trades the PR 2
fast path for instrumentation.
"""

import io
import json

import pytest

from repro.bgp import Prefix
from repro.frr import FrrDaemon
from repro.plugins import route_reflector
from repro.telemetry.provenance import ProvenanceTracker, attr_name
from repro.telemetry.spans import SpanRecorder

PREFIX = Prefix.parse("203.0.113.0/24")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeRoute:
    """The minimum a tracker needs from a route: identity + summary."""

    def __init__(self, key, peer=None):
        self.key = key
        self.source = None
        self.prefix = PREFIX
        self._peer = peer

    def story_key(self):
        return self.key

    def as_path_length(self):
        return 1

    def local_pref(self):
        return 100


class TestSpanRecorder:
    def test_root_span_starts_its_own_trace(self):
        recorder = SpanRecorder("r1")
        span = recorder.start("update")
        assert span["trace"] == span["span"] == "r1#1"
        assert span["parent"] is None

    def test_children_join_parent_trace(self):
        recorder = SpanRecorder("r1")
        root = recorder.start("update")
        child = recorder.start("decision", root)
        assert child["trace"] == root["trace"]
        assert child["parent"] == root["span"]

    def test_ref_adopts_trace_across_recorders(self):
        # The simulator ships (trace, span) refs with the bytes: the
        # receiving router's recorder continues the sender's trace.
        sender = SpanRecorder("a")
        receiver = SpanRecorder("b")
        root = sender.start("export")
        adopted = receiver.start("update", SpanRecorder.ref(root))
        assert adopted["trace"] == root["trace"]
        assert adopted["parent"] == root["span"]
        assert adopted["span"].startswith("b#")

    def test_finish_stamps_end_and_merges_fields(self):
        clock = FakeClock()
        recorder = SpanRecorder("r1", clock=clock)
        span = recorder.start("extension")
        clock.now = 2.5
        recorder.finish(span, outcome="next")
        assert span["end"] == 2.5 and span["outcome"] == "next"

    def test_point_is_instantaneous(self):
        recorder = SpanRecorder("r1")
        span = recorder.point("rib", prefix="p")
        assert span["start"] == span["end"]

    def test_eviction_keeps_newest_and_counts(self):
        recorder = SpanRecorder("r1", capacity=3)
        for _ in range(10):
            recorder.start("update")
        assert len(recorder) == 3
        assert recorder.recorded == 10
        assert recorder.evicted == 7
        assert recorder.stats()["buffered"] == 3

    def test_for_trace_filters(self):
        recorder = SpanRecorder("r1")
        a = recorder.start("update")
        recorder.start("update")  # separate trace
        recorder.start("decision", a)
        assert len(recorder.for_trace(a["trace"])) == 2

    def test_export_jsonl(self, tmp_path):
        recorder = SpanRecorder("r1")
        recorder.start("update", peer="10.0.0.9")
        path = tmp_path / "spans.jsonl"
        assert recorder.export_jsonl(str(path)) == 1
        record = json.loads(path.read_text())
        assert record["peer"] == "10.0.0.9"

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder("r1", capacity=0)


class TestTrackerStories:
    def make(self, **kwargs):
        clock = FakeClock()
        tracker = ProvenanceTracker("10.0.0.1", "frr", clock=clock, **kwargs)
        return tracker, clock

    def test_attr_name_falls_back_to_number(self):
        assert attr_name(5) == "LOCAL_PREF"
        assert attr_name(250) == "attr_250"

    def test_pending_parent_consumed_by_update_span(self):
        tracker, _ = self.make()
        tracker.pending_parent = ("a#1", "a#4")
        span = tracker.begin_update(None)
        assert span["trace"] == "a#1" and span["parent"] == "a#4"

    def test_end_update_finishes_orphaned_nested_spans(self):
        # An exception mid-phase must not mis-parent the next update.
        tracker, _ = self.make()
        tracker.begin_update(None)
        tracker.begin_phase("decision", PREFIX)
        tracker.end_update()
        assert tracker.active_ref() is None
        assert all("end" in span for span in tracker.spans.spans())
        fresh = tracker.begin_update(None)
        assert fresh["parent"] is None

    def test_story_ring_is_bounded_per_prefix(self):
        tracker, _ = self.make(stories_per_prefix=2)
        for _ in range(5):
            tracker.begin_update(None)
            tracker.begin_route(PREFIX, None)
            tracker.end_update()
        assert len(tracker.stories(PREFIX)) == 2

    def test_update_level_events_copied_into_story(self):
        # BGP_RECEIVE_MESSAGE extensions run before any NLRI import;
        # their events belong to every route the update then opens.
        tracker, _ = self.make()

        class Ctx:
            prefix = None
            span = None

        tracker.begin_update(None)
        tracker.record_api(Ctx(), "write_buf", length=23)
        story = tracker.begin_route(PREFIX, None)
        assert story["events"][0]["op"] == "write_buf"

    def test_stories_per_prefix_validated(self):
        with pytest.raises(ValueError):
            ProvenanceTracker("r", stories_per_prefix=0)

    def test_explain_render_covers_event_kinds(self):
        tracker, _ = self.make()

        class Ctx:
            prefix = PREFIX
            span = None

        tracker.begin_update(None)
        tracker.begin_route(PREFIX, None)
        tracker.vmm_skip(Ctx(), "bgp_inbound_filter", "crasher")
        tracker.vmm_fallback(Ctx(), "bgp_inbound_filter", "flaky", "boom")
        tracker.vmm_native(Ctx(), "bgp_inbound_filter")
        tracker.record_filter(PREFIX, "loop_rejected")
        tracker.record_elimination(
            PREFIX, "local_pref", FakeRoute("a"), FakeRoute("b")
        )
        tracker.rib_changed("install", PREFIX, FakeRoute("b"), None)
        tracker.record_export(PREFIX, 0x0A000202, "advertise")
        tracker.end_update()
        text = tracker.render_explain(PREFIX)
        assert "skipped by circuit-breaker" in text
        assert "FAULTED" in text
        assert "native default ran" in text
        assert "rejected: loop_rejected" in text
        assert "step: local_pref" in text
        assert "loc-rib: install" in text
        assert "export -> 10.0.2.2: advertise" in text

    def test_explain_unknown_prefix(self):
        tracker, _ = self.make()
        text = tracker.render_explain(Prefix.parse("192.0.2.0/24"))
        assert "no provenance recorded" in text

    def test_export_jsonl_mixes_stories_spans_and_convergence(self):
        tracker, _ = self.make()
        tracker.begin_update(None)
        tracker.begin_route(PREFIX, None)
        tracker.end_update()
        buffer = io.StringIO()
        count = tracker.export_jsonl(buffer)
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert len(records) == count
        kinds = {record["type"] for record in records}
        assert kinds == {"story", "span", "convergence"}


class TestConvergenceObservability:
    def make(self):
        clock = FakeClock()
        return ProvenanceTracker("10.0.0.1", clock=clock), clock

    def test_install_alone_is_not_a_flap(self):
        tracker, _ = self.make()
        tracker.rib_changed("install", PREFIX, FakeRoute("a"), None)
        assert tracker.flap_counts() == {}

    def test_forward_progress_flaps_but_never_oscillates(self):
        tracker, clock = self.make()
        for index, key in enumerate(("a", "b", "c", "d")):
            clock.now = float(index)
            tracker.rib_changed("replace", PREFIX, FakeRoute(key), None)
        assert tracker.flap_counts() == {str(PREFIX): 3}
        assert tracker.oscillating() == []
        assert tracker.time_of_last_change() == 3.0

    def test_revisiting_abandoned_path_flags_oscillation(self):
        tracker, _ = self.make()
        for key in ("a", "b", "a", "b", "a"):
            tracker.rib_changed("replace", PREFIX, FakeRoute(key), None)
        assert str(PREFIX) in tracker.oscillating()
        report = tracker.convergence_report()
        assert report["revisits"][str(PREFIX)] >= 2
        assert report["oscillating"] == [str(PREFIX)]

    def test_single_revisit_below_threshold(self):
        tracker, _ = self.make()
        for key in ("a", "b", "a"):
            tracker.rib_changed("replace", PREFIX, FakeRoute(key), None)
        assert tracker.oscillating() == []
        assert tracker.oscillating(min_revisits=1) == [str(PREFIX)]

    def test_same_best_reinstalled_is_not_a_change(self):
        tracker, _ = self.make()
        tracker.rib_changed("install", PREFIX, FakeRoute("a"), None)
        tracker.rib_changed("replace", PREFIX, FakeRoute("a"), None)
        assert tracker.flap_counts() == {}


class TestDaemonToggle:
    """enable/disable_provenance trades the fast path for hooks."""

    def make_daemon(self, **kwargs):
        daemon = FrrDaemon(asn=65001, router_id="1.1.1.1", **kwargs)
        daemon.attach_manifest(route_reflector.build_manifest())
        return daemon

    def test_fast_path_active_without_provenance(self):
        daemon = self.make_daemon()
        assert daemon.provenance is None
        assert daemon.vmm._fast

    def test_enable_drops_fast_path_and_wires_hooks(self):
        daemon = self.make_daemon()
        tracker = daemon.enable_provenance()
        assert daemon.provenance is tracker
        assert daemon.host.provenance is tracker
        assert daemon.loc_rib.on_change == tracker.rib_changed
        # Provenance hooks live only in the general loop: every
        # pre-bound closure must be gone.
        assert not daemon.vmm._fast

    def test_disable_restores_fast_path(self):
        daemon = self.make_daemon()
        daemon.enable_provenance()
        daemon.disable_provenance()
        assert daemon.provenance is None
        assert daemon.host.provenance is None
        assert daemon.loc_rib.on_change is None
        assert daemon.vmm._fast

    def test_constructor_flag_enables_tracking(self):
        daemon = self.make_daemon(provenance=True)
        assert daemon.provenance is not None
        assert daemon.provenance.implementation == "frr"

    def test_enable_is_idempotent_per_tracker(self):
        daemon = self.make_daemon()
        first = daemon.enable_provenance()
        custom = ProvenanceTracker("1.1.1.1", "frr")
        second = daemon.enable_provenance(custom)
        assert second is custom
        assert daemon.host.provenance is custom
        assert first is not second
