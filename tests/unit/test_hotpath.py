"""Hot-path overhaul tests.

Covers the PR 2 guarantees: JIT/interpreter count parity on every run
outcome, the single-code fast path being observably identical to the
general chain loop, detach clearing quarantine state, and the
marshalling caches staying coherent under mutation.
"""

import struct

import pytest

from repro.bgp.peer import Neighbor
from repro.core import (
    HELPER_IDS,
    ExecutionContext,
    InsertionPoint,
    NativeExtensionCode,
    NextRequested,
    VirtualMachineManager,
    VmmConfig,
    XbgpProgram,
)
from repro.core.abi import pack_peer_info
from repro.core.extension import ExtensionCode
from repro.ebpf.assembler import assemble
from repro.ebpf.helpers import HelperError, HelperTable
from repro.ebpf.vm import VirtualMachine
from repro.telemetry import QuarantinePolicy


# -- engine count parity ------------------------------------------------


def run_both(program, helpers=None):
    """Run under both engines; assert identical outcome and counters."""
    observed = []
    for jit in (False, True):
        vm = VirtualMachine(program, helpers, jit=jit)
        try:
            outcome = ("return", vm.run())
        except Exception as exc:  # noqa: BLE001 - outcome compared below
            outcome = ("raise", type(exc).__name__)
        observed.append((outcome, vm.steps_executed, vm.helper_calls))
    assert observed[0] == observed[1], f"engines disagree: {observed}"
    return observed[0]


class TestEngineCountParity:
    def test_returning_run_counts_lddw_as_one_step(self):
        outcome, steps, helper_calls = run_both(
            assemble("lddw r0, 0x1122334455667788\nexit")
        )
        assert outcome == ("return", 0x1122334455667788)
        assert steps == 2  # lddw is one instruction, like the interpreter
        assert helper_calls == 0

    def test_returning_run_with_branches_and_stores(self):
        source = (
            "mov r1, 5\n"
            "stxdw [r10-8], r1\n"
            "ldxdw r0, [r10-8]\n"
            "jeq r0, 5, done\n"
            "mov r0, 0\n"
            "done:\n"
            "exit"
        )
        outcome, steps, helper_calls = run_both(assemble(source))
        assert outcome == ("return", 5)
        assert steps == 5 and helper_calls == 0

    def test_delegating_run_counts_up_to_the_next_call(self):
        helpers = HelperTable()

        def helper_next(vm, *args):
            raise NextRequested()

        helpers.register(1, "next", helper_next)
        program = assemble(
            "mov r1, 1\nmov r2, 2\ncall next\nexit", helpers.name_to_id()
        )
        outcome, steps, helper_calls = run_both(program, helpers)
        assert outcome == ("raise", "NextRequested")
        assert steps == 3  # two movs plus the call itself
        assert helper_calls == 1

    def test_faulting_run_counts_the_faulting_load(self):
        # lddw + a dereference outside every region: the faulting
        # instruction itself is charged, exactly as the interpreter does.
        program = assemble("lddw r1, 0x10\nldxdw r0, [r1]\nexit")
        outcome, steps, helper_calls = run_both(program)
        assert outcome == ("raise", "SandboxViolation")
        assert steps == 2 and helper_calls == 0

    def test_faulting_helper_counts_the_call(self):
        helpers = HelperTable()

        def boom(vm, *args):
            raise HelperError("boom")

        helpers.register(1, "boom", boom)
        program = assemble("mov r1, 9\ncall boom\nexit", helpers.name_to_id())
        outcome, steps, helper_calls = run_both(program, helpers)
        assert outcome == ("raise", "HelperError")
        assert steps == 2 and helper_calls == 1

    def test_counters_reset_between_runs_under_both_engines(self):
        for jit in (False, True):
            vm = VirtualMachine(assemble("mov r0, 1\nexit"), jit=jit)
            vm.run()
            first = vm.steps_executed
            vm.run()
            assert vm.steps_executed == first == 2


# -- VMM fast path ------------------------------------------------------


class _Host:
    """Minimal host for VMM-level tests."""

    name = "test"

    def __init__(self):
        self.logged = []

    def log(self, message):
        self.logged.append(message)

    def __getattr__(self, name):  # abstract members unused in these tests
        raise AttributeError(name)


def _make_host():
    from repro.core.host_interface import HostImplementation

    class NullHost(HostImplementation):
        name = "null"

        def __init__(self):
            self.logged = []

        def get_attr(self, ctx, code):
            return None

        def set_attr(self, ctx, code, flags, value):
            return False

        def add_attr(self, ctx, code, flags, value):
            return False

        def remove_attr(self, ctx, code):
            return False

        def get_nexthop(self, ctx):
            return 0, 0, False

        def get_xtra(self, ctx, key):
            return None

        def rib_announce(self, ctx, prefix, next_hop):
            return True

        def log(self, message):
            self.logged.append(message)

    return NullHost()


def _bytecode(name, source, helpers=(), point=InsertionPoint.BGP_INBOUND_FILTER, seq=0):
    from repro.core.abi import PLUGIN_CONSTANTS
    from repro.xc import compile_source

    instructions = compile_source(source, HELPER_IDS, PLUGIN_CONSTANTS)
    return ExtensionCode(name, instructions, list(helpers), point, seq=seq, layout_hint=True)


def _exercise(vmm):
    """Run a representative mix through one point; return observables."""
    point = InsertionPoint.BGP_INBOUND_FILTER
    results = []
    for _ in range(3):
        ctx = ExecutionContext(vmm.host, point)
        results.append(vmm.run(ctx, lambda: 77))
    observables = {
        "results": results,
        "stats": vmm.stats(),
        "fallbacks": vmm.fallbacks,
        "points": vmm.point_stats(),
    }
    if vmm.telemetry is not None:
        observables["trace"] = [
            {k: v for k, v in event.items() if k not in ("seq", "ts")}
            for event in vmm.telemetry.trace.events()
        ]
        observables["metrics"] = vmm.telemetry.registry.to_json()
    return observables


class TestFastPath:
    @pytest.mark.parametrize("telemetry", [True, False])
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("u64 f(u64 a) { return 5; }", 5),
            ("u64 f(u64 a) { next(); return 5; }", 77),
            ("u64 f(u64 a) { return *(u64 *)(16); }", 77),  # faults
        ],
    )
    def test_fast_path_matches_general_loop(self, telemetry, source, expected):
        """fast_path on/off: identical results, stats and trace."""
        observed = {}
        for fast_path in (True, False):
            host = _make_host()
            vmm = VirtualMachineManager(
                host, VmmConfig(telemetry=telemetry, fast_path=fast_path)
            )
            helpers = ("next",) if "next" in source else ()
            vmm.attach_program(XbgpProgram("p", [_bytecode("x", source, helpers)]))
            if fast_path:
                assert InsertionPoint.BGP_INBOUND_FILTER in vmm._fast
            else:
                assert not vmm._fast
            observed[fast_path] = _exercise(vmm)
            assert observed[fast_path]["results"] == [expected] * 3
        # Latency histograms measure real time; drop them before diffing.
        for arm in observed.values():
            arm.get("metrics", {}).pop("xbgp_extension_run_seconds", None)
        assert observed[True] == observed[False]

    @pytest.mark.parametrize("telemetry", [True, False])
    def test_native_extension_fast_path(self, telemetry):
        observed = {}
        for fast_path in (True, False):
            host = _make_host()
            vmm = VirtualMachineManager(
                host, VmmConfig(telemetry=telemetry, fast_path=fast_path)
            )
            code = NativeExtensionCode(
                "py", lambda ctx, h: 123, InsertionPoint.BGP_INBOUND_FILTER
            )
            vmm.attach_program(XbgpProgram("p", [code]))
            observed[fast_path] = _exercise(vmm)
            assert observed[fast_path]["results"] == [123] * 3
        for arm in observed.values():
            arm.get("metrics", {}).pop("xbgp_extension_run_seconds", None)
        assert observed[True] == observed[False]

    def test_multi_code_chain_bypasses_fast_path(self):
        vmm = VirtualMachineManager(_make_host(), VmmConfig())
        first = _bytecode("first", "u64 f(u64 a) { next(); return 1; }", ("next",), seq=0)
        second = _bytecode("second", "u64 f(u64 a) { return 2; }", (), seq=1)
        vmm.attach_program(XbgpProgram("p", [first, second]))
        assert InsertionPoint.BGP_INBOUND_FILTER not in vmm._fast
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 2

    def test_fast_path_rebinds_when_chain_shrinks_to_one(self):
        vmm = VirtualMachineManager(_make_host(), VmmConfig())
        solo = _bytecode("solo", "u64 f(u64 a) { return 4; }", ())
        other = _bytecode("other", "u64 f(u64 a) { return 9; }", (), seq=1)
        vmm.attach_program(XbgpProgram("p1", [solo]))
        vmm.attach_program(XbgpProgram("p2", [other]))
        assert InsertionPoint.BGP_INBOUND_FILTER not in vmm._fast
        vmm.detach_program("p2")
        assert InsertionPoint.BGP_INBOUND_FILTER in vmm._fast
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 4
        vmm.detach_program("p1")
        assert InsertionPoint.BGP_INBOUND_FILTER not in vmm._fast

    def test_fast_path_honours_quarantine(self):
        """The breaker still opens and skips through the fast closure."""
        vmm = VirtualMachineManager(
            _make_host(),
            VmmConfig(quarantine=QuarantinePolicy(error_threshold=2)),
        )
        crasher = _bytecode("crasher", "u64 f(u64 a) { return *(u64 *)(16); }", ())
        vmm.attach_program(XbgpProgram("p", [crasher]))
        assert InsertionPoint.BGP_INBOUND_FILTER in vmm._fast
        point = InsertionPoint.BGP_INBOUND_FILTER
        for _ in range(4):
            ctx = ExecutionContext(vmm.host, point)
            assert vmm.run(ctx, lambda: 77) == 77
        assert vmm.quarantined_codes() == ["crasher"]
        # Once open, runs are skipped (executions stop growing).
        assert vmm.stats()["crasher"]["executions"] == 2
        assert vmm.telemetry.trace.last("skip")["reason"] == "quarantined"

    def test_active_reports_attachment(self):
        vmm = VirtualMachineManager(_make_host(), VmmConfig())
        assert not vmm.active(InsertionPoint.BGP_INBOUND_FILTER)
        vmm.attach_program(
            XbgpProgram("p", [_bytecode("x", "u64 f(u64 a) { return 0; }", ())])
        )
        assert vmm.active(InsertionPoint.BGP_INBOUND_FILTER)
        assert not vmm.active(InsertionPoint.BGP_ENCODE_MESSAGE)
        vmm.detach_program("p")
        assert not vmm.active(InsertionPoint.BGP_INBOUND_FILTER)


class TestDetachClearsQuarantine:
    def test_reattached_code_starts_with_fresh_breaker(self):
        """Regression: detach used to leave the open breaker behind, so
        a fixed extension re-attached under the same name was skipped
        forever."""
        vmm = VirtualMachineManager(
            _make_host(),
            VmmConfig(quarantine=QuarantinePolicy(error_threshold=1)),
        )
        point = InsertionPoint.BGP_INBOUND_FILTER
        crasher = _bytecode("ext", "u64 f(u64 a) { return *(u64 *)(16); }", ())
        vmm.attach_program(XbgpProgram("p", [crasher]))
        ctx = ExecutionContext(vmm.host, point)
        assert vmm.run(ctx, lambda: 77) == 77  # faults, breaker opens
        assert vmm.quarantined_codes() == ["ext"]

        vmm.detach_program("p")
        assert vmm.quarantined_codes() == []

        fixed = _bytecode("ext", "u64 f(u64 a) { return 5; }", ())
        vmm.attach_program(XbgpProgram("p", [fixed]))
        ctx = ExecutionContext(vmm.host, point)
        assert vmm.run(ctx, lambda: 77) == 5  # runs: fresh closed breaker
        assert vmm.telemetry.health.state_for(point.value, "ext").state == "closed"


# -- marshalling caches -------------------------------------------------


class TestPeerInfoCache:
    def test_pack_peer_info_is_cached_and_invalidated(self):
        neighbor = Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001)
        first = pack_peer_info(neighbor)
        assert pack_peer_info(neighbor) is first  # cache hit
        neighbor.rr_client = True  # any field change invalidates
        second = pack_peer_info(neighbor)
        assert second is not first
        assert struct.unpack("<9I", second)[7] == 1

    def test_session_type_change_reflected(self):
        neighbor = Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001)
        assert struct.unpack("<9I", pack_peer_info(neighbor))[0] == 2  # eBGP
        neighbor.peer_asn = 65001
        assert struct.unpack("<9I", pack_peer_info(neighbor))[0] == 1  # iBGP


class TestEattrCaches:
    def test_cache_key_memoised_and_invalidated(self):
        from repro.bird.eattrs import EattrList

        eattrs = EattrList()
        eattrs.ea_set(5, 0x40, b"\x00\x00\x00\x64")
        key = eattrs.cache_key()
        assert eattrs.cache_key() is key
        eattrs.ea_set(4, 0x80, b"\x00\x00\x00\x01")
        assert eattrs.cache_key() != key
        copied = eattrs.copy()
        assert copied.cache_key() == eattrs.cache_key()
        copied.ea_unset(4)
        assert copied.cache_key() != eattrs.cache_key()
        assert eattrs.cache_key() == (
            (4, 0x80, b"\x00\x00\x00\x01"),
            (5, 0x40, b"\x00\x00\x00\x64"),
        )
