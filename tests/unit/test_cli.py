"""Unit tests for the xbgp command-line tools."""

import io
import sys

import pytest

from repro.cli import main


@pytest.fixture
def xc_file(tmp_path):
    path = tmp_path / "filter.xc"
    path.write_text(
        """
        u64 f(u64 args) {
            u64 peer = get_peer_info();
            if (peer == 0) { next(); }
            if (*(u32 *)(peer) != EBGP_SESSION) { next(); }
            if (*(u32 *)(peer + 4) == BAD_AS) { return FILTER_REJECT; }
            next();
        }
        """
    )
    return path


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


class TestCompile:
    def test_compile_to_hex(self, xc_file, tmp_path, capsys):
        out = tmp_path / "prog.hex"
        code, _ = run_cli(
            ["compile", str(xc_file), "-o", str(out), "-D", "BAD_AS=65500"], capsys
        )
        assert code == 0
        blob = bytes.fromhex(out.read_text().strip())
        assert len(blob) % 8 == 0 and len(blob) > 0

    def test_compile_disasm(self, xc_file, capsys):
        code, output = run_cli(
            ["compile", str(xc_file), "--disasm", "-D", "BAD_AS=65500"], capsys
        )
        assert code == 0
        assert "call get_peer_info" in output
        assert "exit" in output

    def test_bad_define_rejected(self, xc_file, capsys):
        with pytest.raises(SystemExit):
            main(["compile", str(xc_file), "-D", "BROKEN"])


class TestVerifyDisasm:
    def test_verify_ok(self, xc_file, tmp_path, capsys):
        out = tmp_path / "prog.hex"
        main(["compile", str(xc_file), "-o", str(out), "-D", "BAD_AS=1"])
        capsys.readouterr()
        code, output = run_cli(["verify", str(out)], capsys)
        assert code == 0 and "OK" in output

    def test_verify_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.hex"
        bad.write_text("ff00000000000000")  # unknown opcode, no exit
        code, output = run_cli(["verify", str(bad)], capsys)
        assert code == 1 and "REJECTED" in output

    def test_disasm_roundtrip(self, xc_file, tmp_path, capsys):
        out = tmp_path / "prog.hex"
        main(["compile", str(xc_file), "-o", str(out), "-D", "BAD_AS=1"])
        capsys.readouterr()
        code, output = run_cli(["disasm", str(out)], capsys)
        assert code == 0 and "call" in output


class TestReports:
    def test_fig1(self, capsys):
        code, output = run_cli(["fig1"], capsys)
        assert code == 0 and "median" in output

    def test_loc(self, capsys):
        code, output = run_cli(["loc"], capsys)
        assert code == 0 and "FRR/BIRD" in output

    def test_gen_table_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "table.mrt"
        code, output = run_cli(
            ["gen-table", str(out), "--routes", "50", "--seed", "3"], capsys
        )
        assert code == 0 and "50 RIB entries" in output
        from repro.mrt import read_table

        with open(out, "rb") as handle:
            peers, entries = read_table(handle)
        assert len(entries) == 50
        assert peers[0].asn == 65100

    def test_fig4_small_run(self, capsys):
        code, output = run_cli(
            [
                "fig4",
                "--implementation",
                "bird",
                "--feature",
                "route_reflection",
                "--engine",
                "pyext",
                "--routes",
                "60",
                "--runs",
                "2",
            ],
            capsys,
        )
        assert code == 0
        assert "route_reflection" in output and "impact" in output


class TestStats:
    def test_stats_prometheus_output(self, capsys):
        code, output = run_cli(
            ["stats", "--routes", "40", "--format", "prom"], capsys
        )
        assert code == 0
        assert "# TYPE xbgp_extension_executions counter" in output
        assert 'extension="rr_import"' in output
        assert "xbgp_extension_instructions_total" in output
        assert "xbgp_extension_run_seconds_bucket" in output
        assert 'xbgp_sessions{implementation="frr"} 2' in output

    def test_stats_json_output(self, capsys):
        import json

        code, output = run_cli(
            ["stats", "--routes", "40", "--format", "json"], capsys
        )
        assert code == 0
        snapshot = json.loads(output)
        assert snapshot["run"]["routes"] == 40
        codes = snapshot["run"]["vmm"]["codes"]
        assert codes["rr_import"]["executions"] == 40
        assert codes["rr_import"]["errors"] == 0
        points = snapshot["run"]["vmm"]["points"]
        assert points["bgp_inbound_filter"]["fallbacks"] == 0
        assert "xbgp_extension_run_seconds" in snapshot["metrics"]

    def test_stats_trace_export(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.jsonl"
        code, output = run_cli(
            [
                "stats",
                "--routes",
                "20",
                "--format",
                "json",
                "--trace-out",
                str(trace_file),
            ],
            capsys,
        )
        assert code == 0
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        assert events
        assert {event["kind"] for event in events} <= {
            "enter", "exit", "next", "default", "skip", "fallback", "quarantine",
        }

    def test_stats_output_file_honors_every_format(self, tmp_path, capsys):
        # --output diverts the exposition to a file: stdout stays empty
        # and the file holds exactly what --format selects.
        import json

        for fmt in ("prom", "json", "both"):
            out = tmp_path / f"stats.{fmt}"
            code, piped = run_cli(
                [
                    "stats", "--routes", "20", "--format", fmt,
                    "--output", str(out),
                ],
                capsys,
            )
            assert code == 0 and piped == ""
            written = out.read_text()
            has_prom = "# TYPE xbgp_extension_executions counter" in written
            has_json = '"elapsed_seconds"' in written
            assert has_prom == (fmt in ("prom", "both"))
            assert has_json == (fmt in ("json", "both"))
        # The json arm parses cleanly on its own.
        snapshot = json.loads((tmp_path / "stats.json").read_text())
        assert snapshot["run"]["routes"] == 20
        assert snapshot["run"]["vmm"]["codes"]["rr_import"]["executions"] == 20


class TestStatsMerge:
    def make_snapshot(self, tmp_path, name, routes):
        path = tmp_path / name
        code = main(
            [
                "stats", "--routes", str(routes), "--format", "json",
                "--output", str(path),
            ]
        )
        assert code == 0
        return path

    def test_merge_doubles_counters(self, tmp_path, capsys):
        import json

        path = self.make_snapshot(tmp_path, "one.json", 30)
        capsys.readouterr()
        code, output = run_cli(
            ["stats", "--merge", str(path), str(path), "--format", "prom"],
            capsys,
        )
        assert code == 0
        line = next(
            l
            for l in output.splitlines()
            if l.startswith("xbgp_extension_executions_total")
            and 'extension="rr_import"' in l
        )
        assert line.endswith(" 60")  # 30 + 30

        # JSON output is itself a mergeable snapshot (closure).
        code, output = run_cli(
            ["stats", "--merge", str(path), str(path), "--format", "json"],
            capsys,
        )
        merged = json.loads(output)
        assert merged["snapshot_version"] == 1
        assert "xbgp_extension_executions" in merged["families"]

    def test_merge_accepts_raw_registry_snapshots(self, tmp_path, capsys):
        import json

        stats_path = self.make_snapshot(tmp_path, "doc.json", 20)
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(
            json.dumps(json.loads(stats_path.read_text())["registry"])
        )
        capsys.readouterr()
        code, output = run_cli(
            ["stats", "--merge", str(stats_path), str(raw_path), "--format", "prom"],
            capsys,
        )
        assert code == 0
        assert "xbgp_extension_executions_total" in output

    def test_merge_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="neither a registry snapshot"):
            main(["stats", "--merge", str(bogus)])


class TestEvents:
    def write_log(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        events = [
            {"event": "replay_start", "ts": 1.0, "shards": 2, "routes": 100},
            {"event": "shard_start", "ts": 1.1, "shard": 0, "routes": 60},
            {"event": "shard_start", "ts": 1.1, "shard": 1, "routes": 40},
            {"event": "shard_finish", "ts": 2.0, "shard": 0, "routes": 60,
             "replay_seconds": 0.9},
            {"event": "shard_finish", "ts": 2.1, "shard": 1, "routes": 40,
             "replay_seconds": 1.0},
            {"event": "replay_finish", "ts": 2.2, "shards": 2, "routes": 100,
             "wall_seconds": 1.2},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_text_rendering_and_filters(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        code, output = run_cli(["events", str(path)], capsys)
        assert code == 0
        assert len(output.splitlines()) == 6

        code, output = run_cli(
            ["events", str(path), "--type", "shard_finish", "--shard", "1"],
            capsys,
        )
        assert code == 0
        lines = output.splitlines()
        assert len(lines) == 1 and "shard=1" in lines[0]

        code, output = run_cli(["events", str(path), "--tail", "2"], capsys)
        assert code == 0
        assert "replay_finish" in output.splitlines()[-1]

    def test_jsonl_and_json_formats(self, tmp_path, capsys):
        import json

        path = self.write_log(tmp_path)
        code, output = run_cli(
            ["events", str(path), "--format", "jsonl", "--type", "shard_start"],
            capsys,
        )
        assert code == 0
        rows = [json.loads(line) for line in output.splitlines()]
        assert [r["shard"] for r in rows] == [0, 1]

        code, output = run_cli(["events", str(path), "--format", "json"], capsys)
        assert len(json.loads(output)) == 6

    def test_validate_clean_and_dirty(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        code, output = run_cli(["events", str(path), "--validate"], capsys)
        assert code == 0
        assert "6 valid event(s), 0 error(s)" in output

        with path.open("a") as handle:
            handle.write('{"event": "bogus", "ts": 1.0}\n')
        code, output = run_cli(["events", str(path), "--validate"], capsys)
        assert code == 1
        assert "1 error(s)" in output

    def test_invalid_log_without_validate_exits(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit, match="not JSON"):
            main(["events", str(path)])

    def test_bench_streams_a_valid_event_log(self, tmp_path, capsys):
        log = tmp_path / "bench-events.jsonl"
        code, _ = run_cli(
            [
                "bench", "--scenario", "full-table", "--routes", "200",
                "--shards", "2", "--runs", "1", "--telemetry",
                "--events", str(log),
            ],
            capsys,
        )
        assert code == 0
        code, output = run_cli(["events", str(log), "--validate"], capsys)
        assert code == 0 and "0 error(s)" in output
        code, output = run_cli(
            ["events", str(log), "--type", "replay_finish", "--format", "jsonl"],
            capsys,
        )
        import json

        rows = [json.loads(line) for line in output.splitlines()]
        assert rows and rows[-1]["routes"] == 200


class TestExplainAndSpans:
    def test_explain_reconstructs_causal_chain(self, capsys):
        # Bytecode engine: attribute writes flow through the recorded
        # xBGP API, so the chain shows the RR stamping its attributes.
        code, output = run_cli(["explain", "198.51.100.0/24"], capsys)
        assert code == 0
        assert "198.51.100.0/24 on 10.0.0.1" in output
        assert "learned from 10.0.1.1 (ibgp)" in output
        assert "set_attr(ORIGINATOR_ID)" in output
        assert "export -> 10.0.2.2: advertise" in output

    def test_explain_json_and_jsonl_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "prov.jsonl"
        code, output = run_cli(
            [
                "explain", "198.51.100.0/24", "--engine", "pyext",
                "--json", "--output", str(out),
            ],
            capsys,
        )
        assert code == 0
        report = json.loads(output)
        assert report["prefix"] == "198.51.100.0/24"
        assert report["stories"]
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert {record["type"] for record in records} == {
            "story", "span", "convergence",
        }

    def test_explain_downstream_router_view(self, capsys):
        code, output = run_cli(
            [
                "explain", "198.51.100.0/24", "--engine", "pyext",
                "--router", "down",
            ],
            capsys,
        )
        assert code == 0
        assert "198.51.100.0/24 on 10.0.2.2" in output
        # The downstream story rides the originator's trace.
        assert "[trace 10.0.1.1#" in output

    def test_explain_rejects_bad_prefix(self, capsys):
        with pytest.raises(SystemExit):
            main(["explain", "not-a-prefix"])

    def test_spans_share_one_trace_across_routers(self, capsys):
        code, output = run_cli(
            ["spans", "198.51.100.0/24", "--engine", "pyext"], capsys
        )
        assert code == 0
        for node in ("up (10.0.1.1)", "dut (10.0.0.1)", "down (10.0.2.2)"):
            assert node in output
        trace_ids = {
            line.split("]")[0].split("[")[1]
            for line in output.splitlines()
            if "[" in line
        }
        assert trace_ids == {"10.0.1.1#1"}

    def test_spans_jsonl_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "spans.jsonl"
        code, _ = run_cli(
            [
                "spans", "198.51.100.0/24", "--engine", "pyext",
                "--output", str(out),
            ],
            capsys,
        )
        assert code == 0
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        assert {span["node"] for span in spans} == {"up", "dut", "down"}
        assert {span["trace"] for span in spans} == {"10.0.1.1#1"}


class TestProfile:
    def test_profile_text_output(self, capsys):
        code, output = run_cli(["profile", "--routes", "40", "--top", "3"], capsys)
        assert code == 0
        assert "phase breakdown (wall clock):" in output
        assert "bgp_inbound_filter" in output
        assert "rr_import" in output
        assert "rr_export" in output

    def test_profile_json_hotspots_sum_to_telemetry(self, capsys):
        import json

        code, output = run_cli(
            [
                "profile", "--scenario", "route-reflection", "--impl", "frr",
                "--format", "json", "--routes", "40",
            ],
            capsys,
        )
        assert code == 0
        report = json.loads(output)
        counted = report["telemetry_instructions"]
        assert report["extensions"]
        for extension in report["extensions"]:
            key = f"{extension['point']}/{extension['extension']}"
            assert extension["instructions"] == counted[key] > 0

    def test_profile_flamegraph_export(self, tmp_path, capsys):
        out = tmp_path / "collapsed.txt"
        code, _ = run_cli(
            ["profile", "--routes", "40", "--flamegraph", str(out)], capsys
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames.count(";") >= 3
            assert weight.isdigit()

    def test_stats_health_prints_breaker_table(self, capsys):
        code, output = run_cli(["stats", "--health", "--routes", "40"], capsys)
        assert code == 0
        assert "STATE" in output
        assert "rr_import" in output
        assert "closed" in output
        assert "0 quarantined" in output


class TestBench:
    def test_bench_record_compare_and_regression_gate(self, tmp_path, capsys):
        import json

        baseline_dir = tmp_path / "baselines"
        argv = ["bench", "--routes", "40", "--runs", "2"]
        code, output = run_cli(argv + ["--record", str(baseline_dir)], capsys)
        assert code == 0
        path = baseline_dir / "BENCH_route-reflection-frr-jit.json"
        record = json.loads(path.read_text())
        assert record["schema_version"] == 1
        assert record["runs"] == 2
        assert record["median_wall_seconds"] > 0
        assert record["instructions"] > 0

        code, _ = run_cli(argv + ["--compare", str(baseline_dir)], capsys)
        assert code == 0

        # Synthetic slowdown: shrink the recorded baseline median far
        # past any run-to-run noise — the gate must trip.  (A mere 2x
        # shrink flaked: a warm compare run can be >25% faster than
        # the just-recorded median, slipping under the 1.5x gate.)
        record["median_wall_seconds"] /= 100.0
        path.write_text(json.dumps(record))
        code, _ = run_cli(
            argv + ["--compare", str(baseline_dir), "--threshold", "0.5"], capsys
        )
        assert code == 1

    def test_bench_compare_missing_baseline_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "bench", "--routes", "40", "--runs", "1",
                    "--compare", str(tmp_path / "nope"),
                ]
            )

    def test_bench_full_table_scenario_records_shards(self, tmp_path, capsys):
        import json

        code, output = run_cli(
            [
                "bench", "--scenario", "full-table", "--impl", "frr",
                "--engine", "native", "--routes", "300", "--runs", "1",
                "--batch", "32", "--shards", "2",
            ],
            capsys,
        )
        assert code == 0
        record = json.loads(output)
        assert record["scenario"] == "full-table-frr-native"
        assert record["batch"] == 32 and record["shards"] == 2
        per_shard = record["per_shard"]
        assert len(per_shard) == 2
        assert sum(shard["routes"] for shard in per_shard) == 300
        assert all(shard["batches"] >= 1 for shard in per_shard)

    def test_bench_profile_dir_writes_per_shard_artifacts(self, tmp_path, capsys):
        import json

        profile_dir = tmp_path / "profiles"
        code, _ = run_cli(
            [
                "bench", "--scenario", "full-table", "--impl", "frr",
                "--engine", "native", "--routes", "200", "--runs", "1",
                "--batch", "32", "--shards", "2",
                "--profile-dir", str(profile_dir),
            ],
            capsys,
        )
        assert code == 0
        artifacts = sorted(profile_dir.iterdir())
        assert [path.name for path in artifacts] == [
            "shard-0-profile.json",
            "shard-1-profile.json",
        ]
        for path in artifacts:
            report = json.loads(path.read_text())
            assert report["profile"]["phases"]
            assert report["replay_seconds"] > 0

    def test_bench_replays_mrt_table(self, tmp_path, capsys):
        import json

        table = tmp_path / "table.mrt"
        main(["gen-table", str(table), "--routes", "120", "--seed", "3"])
        capsys.readouterr()
        code, output = run_cli(
            [
                "bench", "--scenario", "full-table", "--impl", "bird",
                "--engine", "native", "--runs", "1", "--batch", "16",
                "--mrt", str(table),
            ],
            capsys,
        )
        assert code == 0
        record = json.loads(output)
        assert record["routes"] == 120  # table size, not the --routes default


class TestGenTableDeterminism:
    def test_same_seed_same_bytes(self, tmp_path, capsys):
        a, b = tmp_path / "a.mrt", tmp_path / "b.mrt"
        for path in (a, b):
            code, output = run_cli(
                ["gen-table", str(path), "--routes", "80", "--seed", "11"], capsys
            )
            assert code == 0 and "80 RIB entries" in output
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_different_tables(self, tmp_path, capsys):
        a, b = tmp_path / "a.mrt", tmp_path / "b.mrt"
        main(["gen-table", str(a), "--routes", "80", "--seed", "11"])
        main(["gen-table", str(b), "--routes", "80", "--seed", "12"])
        capsys.readouterr()
        assert a.read_bytes() != b.read_bytes()


class TestStatsDiff:
    def _record(self, tmp_path, capsys, name, routes):
        path = tmp_path / name
        code, _ = run_cli(
            [
                "stats", "--routes", str(routes), "--format", "json",
                "-o", str(path),
            ],
            capsys,
        )
        assert code == 0
        return path

    def test_diff_between_two_runs(self, tmp_path, capsys):
        small = self._record(tmp_path, capsys, "small.json", 60)
        large = self._record(tmp_path, capsys, "large.json", 120)
        code, output = run_cli(
            ["stats", "--diff", str(small), str(large), "--format", "prom"],
            capsys,
        )
        assert code == 0
        assert "xbgp_extension_executions" in output
        assert "->" in output

    def test_diff_of_identical_runs_is_empty(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys, "run.json", 60)
        code, output = run_cli(
            ["stats", "--diff", str(path), str(path), "--format", "prom"],
            capsys,
        )
        assert code == 0
        assert "no differences" in output

    def test_diff_json_output(self, tmp_path, capsys):
        import json

        small = self._record(tmp_path, capsys, "small.json", 60)
        large = self._record(tmp_path, capsys, "large.json", 120)
        code, output = run_cli(
            ["stats", "--diff", str(small), str(large), "--format", "json"],
            capsys,
        )
        assert code == 0
        diff = json.loads(output)
        assert {"added_families", "removed_families", "changes"} <= set(diff)
        assert any(
            row["family"] == "xbgp_extension_executions"
            for row in diff["changes"]
        )

    def test_diff_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text('{"hello": "world"}')
        with pytest.raises(SystemExit, match="not a registry snapshot"):
            main(["stats", "--diff", str(junk), str(junk)])

    def test_diff_and_merge_are_exclusive(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="exclusive"):
            main(
                [
                    "stats", "--merge", str(path),
                    "--diff", str(path), str(path),
                ]
            )


class TestEventsRotatedValidate:
    def test_validate_accepts_rotated_pair(self, tmp_path, capsys):
        from repro.telemetry.events import EventLog

        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), max_bytes=400, clock=lambda: 1.0)
        emitted = 0
        while log.rotations == 0:
            log.emit("shard_start", shard=emitted, routes=10)
            emitted += 1
            assert emitted < 100
        log.emit("shard_start", shard=emitted, routes=10)
        emitted += 1
        log.close()
        assert (tmp_path / "events.jsonl.1").exists()

        code, output = run_cli(["events", str(path), "--validate"], capsys)
        assert code == 0
        assert f"{emitted} valid event(s), 0 error(s) across 2 file(s)" in output

    def test_validate_reports_which_file_is_dirty(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        sibling = tmp_path / "events.jsonl.1"
        sibling.write_text('{"event": "bogus", "ts": 1.0}\n')
        path.write_text(
            '{"event": "shard_start", "ts": 1.0, "shard": 0, "routes": 5}\n'
        )
        code, _ = run_cli(["events", str(path), "--validate"], capsys)
        assert code == 1


class TestBenchTimeseriesAndAlerts:
    def test_bench_records_timeseries_jsonl(self, tmp_path, capsys):
        from repro.telemetry.timeseries import counter_total, read_timeseries

        out = tmp_path / "ts.jsonl"
        code, _ = run_cli(
            [
                "bench", "--scenario", "full-table", "--engine", "native",
                "--routes", "240", "--runs", "1", "--batch", "32",
                "--shards", "2", "--timeseries", str(out),
                "--timeseries-every", "50",
            ],
            capsys,
        )
        assert code == 0
        samples = read_timeseries(str(out))
        assert samples
        final = samples[-1]
        # Shard-labeled merged series: both shards contributed.
        assert counter_total(
            final, "xbgp_batches_flushed", {"shard": "0"}
        ) is not None
        assert counter_total(
            final, "xbgp_batches_flushed", {"shard": "1"}
        ) is not None

    def test_quiet_alert_keeps_exit_zero_and_lands_in_record(
        self, tmp_path, capsys
    ):
        import json

        code, output = run_cli(
            [
                "bench", "--routes", "40", "--runs", "1", "--timeseries",
                "--alert", "xbgp_quarantine_transitions > 0",
            ],
            capsys,
        )
        assert code == 0
        record = json.loads(output)
        assert record["alerts_fired"] == []

    def test_crasher_drill_trips_the_alert_gate(self, tmp_path, capsys):
        import json

        log = tmp_path / "events.jsonl"
        code, output = run_cli(
            [
                "bench", "--routes", "60", "--runs", "1", "--timeseries",
                "--alert", "xbgp_quarantine_transitions > 0",
                "--inject-crasher", "--quarantine-after", "3",
                "--events", str(log),
            ],
            capsys,
        )
        assert code == 1
        record = json.loads(output)
        assert record["alerts_fired"] == [
            "critical: xbgp_quarantine_transitions > 0"
        ]
        # The fire is also a schema'd event in the log.
        code, _ = run_cli(["events", str(log), "--validate"], capsys)
        assert code == 0
        code, output = run_cli(
            ["events", str(log), "--type", "alert_fire", "--format", "jsonl"],
            capsys,
        )
        rows = [json.loads(line) for line in output.splitlines()]
        assert rows and rows[0]["severity"] == "critical"

    def test_alert_rules_file_and_bad_rule_rejected(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("# no quarantines allowed\nxbgp_quarantine_transitions > 0\n")
        code, _ = run_cli(
            [
                "bench", "--routes", "40", "--runs", "1", "--timeseries",
                "--alert-rules", str(rules),
            ],
            capsys,
        )
        assert code == 0
        with pytest.raises(SystemExit, match="cannot parse"):
            main(["bench", "--routes", "40", "--runs", "1", "--alert", "bogus ~ 1"])


class TestTop:
    def _timeseries_file(self, tmp_path):
        import json

        from repro.telemetry.aggregate import snapshot_registry
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.timeseries import make_sample

        registry = MetricsRegistry()
        samples = []
        for seq, ts in enumerate((0.0, 1.0, 2.0), 1):
            registry.counter("xbgp_updates", "updates").inc(10)
            samples.append(make_sample(snapshot_registry(registry), ts, seq))
        path = tmp_path / "ts.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in samples))
        return path

    def test_top_once_renders_file(self, tmp_path, capsys):
        path = self._timeseries_file(tmp_path)
        code, output = run_cli(["top", str(path), "--once"], capsys)
        assert code == 0
        assert "xbgp top" in output
        assert "samples 3" in output
        assert "xbgp_updates" in output

    def test_top_once_renders_live_exporter(self, tmp_path, capsys):
        from repro.telemetry.aggregate import snapshot_registry
        from repro.telemetry.alerts import AlertEngine, parse_rule
        from repro.telemetry.exporter import TelemetryExporter
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.timeseries import TimeSeries, make_sample

        registry = MetricsRegistry()
        registry.counter("xbgp_updates", "updates").inc(5)
        series = TimeSeries()
        series.append(snapshot_registry(registry), 1.0)
        engine = AlertEngine([parse_rule("xbgp_updates > 0")])
        engine.observe(make_sample(snapshot_registry(registry), 1.0))
        with TelemetryExporter(
            registry=registry, alerts=engine, timeseries=series
        ) as exporter:
            code, output = run_cli(
                ["top", "--url", exporter.url(""), "--once"], capsys
            )
        assert code == 0
        assert "samples 1" in output
        assert "CRITICAL" in output
        assert "health degraded" in output

    def test_top_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="not both"):
            main(["top", "--once"])
        with pytest.raises(SystemExit, match="not both"):
            main(["top", "x.jsonl", "--url", "http://localhost:1", "--once"])
