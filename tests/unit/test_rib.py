"""Unit tests for the RIB containers and RouteView accessors."""

from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.peer import Neighbor
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib
from repro.bird.eattrs import EattrList
from repro.bird.rib import BirdRoute


def neighbor(address="10.0.0.2", asn=65002):
    return Neighbor.build(address, asn, "10.0.0.1", 65001)


def route(prefix_text, peer=None):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence([65002])),
        make_next_hop(parse_ipv4("10.0.0.2")),
    ]
    return BirdRoute(Prefix.parse(prefix_text), peer or neighbor(), EattrList.from_wire(attrs))


class TestAdjRibIn:
    def test_update_and_candidates(self):
        rib = AdjRibIn()
        r1 = route("10.0.0.0/8")
        rib.update(1, r1)
        assert rib.candidates(Prefix.parse("10.0.0.0/8")) == [r1]
        assert len(rib) == 1

    def test_update_returns_replaced(self):
        rib = AdjRibIn()
        r1, r2 = route("10.0.0.0/8"), route("10.0.0.0/8")
        assert rib.update(1, r1) is None
        assert rib.update(1, r2) is r1
        assert len(rib) == 1

    def test_candidates_across_peers(self):
        rib = AdjRibIn()
        r1, r2 = route("10.0.0.0/8"), route("10.0.0.0/8")
        rib.update(1, r1)
        rib.update(2, r2)
        assert set(map(id, rib.candidates(Prefix.parse("10.0.0.0/8")))) == {id(r1), id(r2)}

    def test_withdraw(self):
        rib = AdjRibIn()
        r1 = route("10.0.0.0/8")
        rib.update(1, r1)
        assert rib.withdraw(1, r1.prefix) is r1
        assert rib.withdraw(1, r1.prefix) is None
        assert rib.candidates(r1.prefix) == []

    def test_withdraw_unknown_peer(self):
        assert AdjRibIn().withdraw(9, Prefix.parse("10.0.0.0/8")) is None

    def test_drop_peer(self):
        rib = AdjRibIn()
        rib.update(1, route("10.0.0.0/8"))
        rib.update(1, route("11.0.0.0/8"))
        dropped = rib.drop_peer(1)
        assert len(dropped) == 2
        assert len(rib) == 0

    def test_routes_from(self):
        rib = AdjRibIn()
        rib.update(1, route("10.0.0.0/8"))
        assert len(list(rib.routes_from(1))) == 1
        assert list(rib.routes_from(2)) == []


class TestLocRib:
    def test_install_lookup_remove(self):
        rib = LocRib()
        r1 = route("10.0.0.0/8")
        assert rib.install(r1) is None
        assert rib.lookup(r1.prefix) is r1
        assert r1.prefix in rib
        assert rib.remove(r1.prefix) is r1
        assert rib.lookup(r1.prefix) is None

    def test_install_returns_previous(self):
        rib = LocRib()
        r1, r2 = route("10.0.0.0/8"), route("10.0.0.0/8")
        rib.install(r1)
        assert rib.install(r2) is r1

    def test_iteration(self):
        rib = LocRib()
        rib.install(route("10.0.0.0/8"))
        rib.install(route("11.0.0.0/8"))
        assert len(list(rib.routes())) == 2
        assert len(list(rib.prefixes())) == 2
        assert len(rib) == 2


class TestAdjRibOut:
    def test_advertise_and_withdraw(self):
        rib = AdjRibOut()
        r1 = route("10.0.0.0/8")
        assert rib.advertise(5, r1) is None
        assert rib.advertised(5, r1.prefix) is r1
        assert rib.withdraw(5, r1.prefix) is r1
        assert rib.advertised(5, r1.prefix) is None

    def test_withdraw_not_advertised(self):
        assert AdjRibOut().withdraw(5, Prefix.parse("10.0.0.0/8")) is None

    def test_routes_to_and_drop(self):
        rib = AdjRibOut()
        rib.advertise(5, route("10.0.0.0/8"))
        assert len(list(rib.routes_to(5))) == 1
        rib.drop_peer(5)
        assert list(rib.routes_to(5)) == []


class TestRouteViewDefaults:
    def test_defaults_for_missing_attributes(self):
        bare = BirdRoute(Prefix.parse("10.0.0.0/8"), neighbor(), EattrList())
        assert bare.local_pref() == 100
        assert bare.as_path_length() == 0
        assert bare.origin() == Origin.INCOMPLETE
        assert bare.med() == 0
        assert bare.next_hop() == 0

    def test_ebgp_detection(self):
        assert route("10.0.0.0/8").from_ebgp()
        ibgp = route("10.0.0.0/8", peer=neighbor(asn=65001))
        assert not ibgp.from_ebgp()

    def test_with_attributes_copies(self):
        original = route("10.0.0.0/8")
        modified = original.with_attributes(
            [make_origin(Origin.EGP)]
        )
        assert modified.origin() == Origin.EGP
        assert original.origin() == Origin.IGP
        assert modified.prefix == original.prefix
        assert modified.source is original.source
