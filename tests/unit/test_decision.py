"""Unit tests for the decision process ranking ladder."""

from repro.bgp.attributes import (
    make_as_path,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
    make_originator_id,
    make_cluster_list,
)
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.decision import DecisionConfig, best_route, rank_routes
from repro.bgp.peer import Neighbor
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bird.eattrs import EattrList
from repro.bird.rib import BirdRoute

PREFIX = Prefix.parse("10.0.0.0/8")


def neighbor(address, asn, local_asn=65001):
    return Neighbor.build(address, asn, "10.9.9.9", local_asn)


def route(
    peer,
    as_path=(65100,),
    local_pref=None,
    origin=Origin.IGP,
    med=None,
    next_hop="10.0.0.1",
    originator=None,
    cluster_len=0,
):
    attrs = [
        make_origin(origin),
        make_as_path(AsPath.from_sequence(as_path)),
        make_next_hop(parse_ipv4(next_hop)),
    ]
    if local_pref is not None:
        attrs.append(make_local_pref(local_pref))
    if med is not None:
        attrs.append(make_med(med))
    if originator is not None:
        attrs.append(make_originator_id(parse_ipv4(originator)))
    if cluster_len:
        attrs.append(make_cluster_list([parse_ipv4("9.9.9.9")] * cluster_len))
    return BirdRoute(PREFIX, peer, EattrList.from_wire(attrs))


class TestLadder:
    def test_highest_local_pref_wins(self):
        a = route(neighbor("10.0.1.1", 65001), local_pref=200)
        b = route(neighbor("10.0.1.2", 65001), local_pref=100)
        assert best_route([b, a]) is a

    def test_default_local_pref_is_100(self):
        a = route(neighbor("10.0.1.1", 65001))  # implicit 100
        b = route(neighbor("10.0.1.2", 65001), local_pref=150)
        assert best_route([a, b]) is b

    def test_shorter_as_path_wins(self):
        a = route(neighbor("10.0.1.1", 65100), as_path=(65100,))
        b = route(neighbor("10.0.1.2", 65200), as_path=(65200, 65300))
        assert best_route([b, a]) is a

    def test_as_set_counts_as_one_hop(self):
        from repro.bgp.aspath import AsPathSegment
        from repro.bgp.constants import AsPathSegmentType

        path = AsPath(
            [
                AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(AsPathSegmentType.AS_SET, [2, 3, 4]),
            ]
        )
        attrs = [make_origin(Origin.IGP), make_next_hop(1)]
        a = BirdRoute(
            PREFIX,
            neighbor("10.0.1.1", 65100),
            EattrList.from_wire(attrs + [make_as_path(path)]),
        )
        b = route(neighbor("10.0.1.2", 65200), as_path=(9, 8, 7))
        assert best_route([b, a]) is a  # 2 hops beats 3

    def test_lower_origin_wins(self):
        a = route(neighbor("10.0.1.1", 65100), origin=Origin.IGP)
        b = route(neighbor("10.0.1.2", 65200), origin=Origin.INCOMPLETE)
        assert best_route([b, a]) is a

    def test_med_compared_within_same_neighbor_as(self):
        a = route(neighbor("10.0.1.1", 65100), med=10)
        b = route(neighbor("10.0.1.2", 65100), med=5)
        assert best_route([a, b]) is b

    def test_med_ignored_across_different_as(self):
        # Different neighbor AS: MED skipped, eBGP tie, falls through to
        # lowest peer address.
        a = route(neighbor("10.0.1.1", 65100), med=50)
        b = route(neighbor("10.0.1.2", 65200), med=5)
        assert best_route([a, b]) is a

    def test_always_compare_med(self):
        config = DecisionConfig(always_compare_med=True)
        a = route(neighbor("10.0.1.1", 65100), med=50)
        b = route(neighbor("10.0.1.2", 65200), med=5)
        assert best_route([a, b], config) is b

    def test_ebgp_beats_ibgp(self):
        a = route(neighbor("10.0.1.1", 65001))  # iBGP (same AS)
        b = route(neighbor("10.0.1.2", 65200))  # eBGP
        assert best_route([a, b]) is b

    def test_lower_igp_metric_wins(self):
        metrics = {parse_ipv4("10.0.0.1"): 50, parse_ipv4("10.0.0.2"): 5}
        config = DecisionConfig(igp_metric=lambda addr: metrics[addr])
        a = route(neighbor("10.0.1.1", 65001), next_hop="10.0.0.1")
        b = route(neighbor("10.0.1.2", 65001), next_hop="10.0.0.2")
        assert best_route([a, b], config) is b

    def test_lower_originator_id_wins(self):
        a = route(neighbor("10.0.1.1", 65001), originator="3.3.3.3")
        b = route(neighbor("10.0.1.2", 65001), originator="2.2.2.2")
        assert best_route([a, b]) is b

    def test_shorter_cluster_list_wins(self):
        a = route(neighbor("10.0.1.1", 65001), originator="2.2.2.2", cluster_len=2)
        b = route(neighbor("10.0.1.2", 65001), originator="2.2.2.2", cluster_len=1)
        assert best_route([a, b]) is b

    def test_lowest_peer_address_is_final_tiebreak(self):
        a = route(neighbor("10.0.1.1", 65001), originator="2.2.2.2")
        b = route(neighbor("10.0.1.2", 65001), originator="2.2.2.2")
        assert best_route([b, a]) is a


class TestProperties:
    def test_empty_candidates(self):
        assert best_route([]) is None

    def test_order_independence(self):
        candidates = [
            route(neighbor("10.0.1.1", 65001), local_pref=100),
            route(neighbor("10.0.1.2", 65001), local_pref=200),
            route(neighbor("10.0.1.3", 65001), local_pref=150),
        ]
        forward = best_route(candidates)
        backward = best_route(list(reversed(candidates)))
        assert forward is backward

    def test_rank_routes_best_first(self):
        candidates = [
            route(neighbor("10.0.1.1", 65001), local_pref=100),
            route(neighbor("10.0.1.2", 65001), local_pref=200),
        ]
        ranked = rank_routes(candidates)
        assert ranked[0] is best_route(candidates)
        assert len(ranked) == 2
