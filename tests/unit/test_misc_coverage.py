"""Edge-case tests for corners the main suites pass over."""

import pytest

from repro.bgp.peer import Neighbor
from repro.core.context import ExecutionContext
from repro.core.insertion_points import InsertionPoint
from repro.ebpf.disassembler import disassemble, disassemble_one
from repro.ebpf.isa import Instruction, InstructionError
from repro.ebpf.memory import SandboxViolation, VmMemory


class TestDisassemblerEdges:
    def test_lddw_missing_second_slot_rejected(self):
        with pytest.raises(InstructionError):
            disassemble([Instruction(0x18, 1, 0, 0, 5)])

    def test_unknown_opcode_rejected(self):
        with pytest.raises(InstructionError):
            disassemble_one(Instruction(0xFF, 0, 0, 0, 0))

    def test_negative_offsets_render(self):
        text = disassemble_one(Instruction(0x79, 1, 10, -8, 0))
        assert text == "ldxdw r1, [r10-8]"

    def test_store_immediate_renders(self):
        text = disassemble_one(Instruction(0x7A, 10, 0, -16, 99))
        assert text == "stdw [r10-16], 99"


class TestVmMemoryEdges:
    def test_unterminated_cstring_faults(self):
        memory = VmMemory(heap_size=32)
        address = memory.alloc_bytes(b"\x41" * 8)
        with pytest.raises(SandboxViolation):
            memory.read_cstring(address, limit=4)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            VmMemory().alloc(-1)

    def test_alloc_aligns_to_eight(self):
        memory = VmMemory()
        first = memory.alloc(3)
        second = memory.alloc(1)
        assert (second - first) == 8

    def test_frame_pointer_at_stack_top(self):
        memory = VmMemory()
        assert memory.frame_pointer() == memory.stack.end


class TestInsertionPointParse:
    def test_parse_by_name_and_value(self):
        assert (
            InsertionPoint.parse("BGP_INBOUND_FILTER")
            == InsertionPoint.parse("bgp_inbound_filter")
            == InsertionPoint.BGP_INBOUND_FILTER
        )

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            InsertionPoint.parse("BGP_TELEPORT")


class TestNeighborAndContext:
    def test_session_type_flips_with_asn(self):
        same = Neighbor.build("10.0.0.2", 65001, "10.0.0.1", 65001)
        other = Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001)
        assert same.is_ibgp() and not same.is_ebgp()
        assert other.is_ebgp() and not other.is_ibgp()

    def test_router_id_defaults_to_address(self):
        neighbor = Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001)
        assert neighbor.peer_router_id == neighbor.peer_address

    def test_context_defaults(self):
        ctx = ExecutionContext(host=None, insertion_point=InsertionPoint.BGP_DECISION)
        assert ctx.next_requested is False
        assert ctx.error is None
        assert ctx.hidden == {}
        assert "BGP_DECISION" in repr(ctx)
