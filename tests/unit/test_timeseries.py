"""Unit tests for repro.telemetry.timeseries.

Covers the sample schema, the bounded ring, the sampler (cadence
gating, write-through JSONL), the derived series (counter rates,
windowed histogram quantiles, gauge last-value), the shard merge path
and its partition-invariance law, and the run-diff helpers behind
``xbgp stats --diff``.
"""

import json

import pytest

from repro.telemetry.aggregate import snapshot_registry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import (
    TIMESERIES_VERSION,
    TimeSeries,
    TimeSeriesSampler,
    counter_rates,
    counter_total,
    diff_samples,
    gauge_value,
    histogram_quantiles,
    histogram_windows,
    load_snapshot_source,
    make_sample,
    merge_timeseries,
    read_timeseries,
    render_diff,
    validate_sample,
    write_timeseries,
)


def _registry(updates=0.0, depth=None, latencies=()):
    registry = MetricsRegistry()
    counter = registry.counter("updates_total", "updates")
    if updates:
        counter.inc(updates)
    if depth is not None:
        registry.gauge("queue_depth", "queue").set(depth)
    histogram = registry.histogram("run_seconds", "latency")
    for value in latencies:
        histogram.observe(value)
    return registry


def _sample(ts, **kwargs):
    return make_sample(snapshot_registry(_registry(**kwargs)), ts)


class TestSampleSchema:
    def test_make_and_validate_round_trip(self):
        sample = _sample(12.5, updates=3)
        assert sample["timeseries_version"] == TIMESERIES_VERSION
        assert validate_sample(sample) is sample

    def test_labels_are_stringified(self):
        sample = make_sample(
            snapshot_registry(_registry()), 1.0, labels={"shard": 3}
        )
        assert sample["labels"] == {"shard": "3"}

    def test_bad_version_rejected(self):
        sample = _sample(1.0)
        sample["timeseries_version"] = 99
        with pytest.raises(ValueError, match="timeseries_version"):
            validate_sample(sample)

    def test_bad_ts_rejected(self):
        sample = _sample(1.0)
        sample["ts"] = "noon"
        with pytest.raises(ValueError, match="'ts'"):
            validate_sample(sample)

    def test_missing_registry_rejected(self):
        with pytest.raises(ValueError, match="registry"):
            validate_sample({"timeseries_version": 1, "ts": 1.0})


class TestTimeSeriesRing:
    def test_append_stamps_monotonic_seq(self):
        series = TimeSeries()
        first = series.append(snapshot_registry(_registry()), 1.0)
        second = series.append(snapshot_registry(_registry()), 2.0)
        assert (first["seq"], second["seq"]) == (1, 2)
        assert series.last() is series.samples()[-1]

    def test_ring_evicts_oldest(self):
        series = TimeSeries(capacity=2)
        for ts in (1.0, 2.0, 3.0):
            series.append(snapshot_registry(_registry()), ts)
        assert [s["ts"] for s in series.samples()] == [2.0, 3.0]
        assert series.recorded == 3
        assert series.evicted == 1
        assert series.stats()["buffered"] == 2

    def test_series_labels_stamped_on_every_sample(self):
        series = TimeSeries(labels={"host": "frr"})
        sample = series.append(
            snapshot_registry(_registry()), 1.0, labels={"shard": "0"}
        )
        assert sample["labels"] == {"host": "frr", "shard": "0"}

    def test_append_sample_revalidates_and_restamps(self):
        series = TimeSeries()
        shipped = _sample(5.0, updates=1)
        shipped["seq"] = 42
        stored = series.append_sample(shipped)
        assert stored["seq"] == 1
        with pytest.raises(ValueError):
            series.append_sample({"ts": 1.0})

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TimeSeries(capacity=0)


class TestSampler:
    def test_sample_snapshots_current_registry(self):
        registry = _registry()
        sampler = TimeSeriesSampler(registry, clock=lambda: 7.0)
        registry.counter("updates_total", "updates").inc(4)
        sample = sampler.sample()
        assert sample["ts"] == 7.0
        assert counter_total(sample, "updates_total") == 4.0

    def test_maybe_sample_respects_cadence(self):
        clock = iter([0.0, 0.4, 1.1, 1.1]).__next__
        sampler = TimeSeriesSampler(
            _registry(), every_seconds=1.0, clock=clock
        )
        assert sampler.maybe_sample() is not None  # first is free
        assert sampler.maybe_sample() is None      # 0.4s later: gated
        assert sampler.maybe_sample() is not None  # 1.1s later: due
        assert len(sampler.series) == 2

    def test_write_through_jsonl_round_trips(self, tmp_path):
        path = str(tmp_path / "ts.jsonl")
        registry = _registry()
        with TimeSeriesSampler(registry, path=path, clock=lambda: 1.0) as s:
            registry.counter("updates_total", "updates").inc()
            s.sample()
            s.sample()
        loaded = read_timeseries(path)
        assert [x["seq"] for x in loaded] == [1, 2]
        assert counter_total(loaded[-1], "updates_total") == 1.0

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_timeseries(str(path))
        path.write_text(json.dumps({"ts": 1.0}) + "\n")
        with pytest.raises(ValueError, match="timeseries_version"):
            read_timeseries(str(path))

    def test_write_timeseries_counts(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        samples = [_sample(1.0), _sample(2.0)]
        assert write_timeseries(samples, path) == 2
        assert len(read_timeseries(path)) == 2


class TestDerivedSeries:
    def test_counter_rates_between_samples(self):
        samples = [
            _sample(0.0, updates=0),
            _sample(2.0, updates=10),
            _sample(4.0, updates=30),
        ]
        rates = counter_rates(samples, "updates_total")
        assert rates == [(2.0, 5.0), (4.0, 10.0)]

    def test_counter_rates_clamp_resets_to_zero(self):
        samples = [_sample(0.0, updates=10), _sample(1.0, updates=2)]
        assert counter_rates(samples, "updates_total") == [(1.0, 0.0)]

    def test_counter_total_none_when_absent(self):
        sample = _sample(1.0)
        assert counter_total(sample, "updates_total") == 0.0
        assert counter_total(sample, "no_such_family") is None

    def test_gauge_last_value(self):
        sample = _sample(1.0, depth=17)
        assert gauge_value(sample, "queue_depth") == 17.0
        assert gauge_value(sample, "missing") is None

    def test_histogram_quantiles_cumulative(self):
        sample = _sample(1.0, latencies=[0.001] * 50 + [0.1] * 50)
        summary = histogram_quantiles(sample, "run_seconds", (0.5, 0.95))
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"]
        assert histogram_quantiles(sample, "missing") is None

    def test_histogram_windows_use_bucket_deltas(self):
        fast = _sample(0.0, latencies=[0.001] * 100)
        # Second sample adds 100 slow observations on top.
        registry = _registry(latencies=[0.001] * 100 + [0.5] * 100)
        later = make_sample(snapshot_registry(registry), 10.0)
        windows = histogram_windows([fast, later], "run_seconds")
        assert len(windows) == 1
        window = windows[0]
        assert window["ts"] == 10.0
        assert window["count"] == 100  # only the delta
        assert window["p50"] > 0.01    # the window is all-slow


class TestMergeTimeseries:
    def _shard_series(self, totals, base_ts=0.0):
        samples = []
        for offset, total in enumerate(totals):
            samples.append(_sample(base_ts + offset, updates=total))
        return samples

    def test_merged_final_totals_equal_sum_of_shards(self):
        shard0 = self._shard_series([5, 10], base_ts=0.0)
        shard1 = self._shard_series([7, 21], base_ts=0.5)
        merged = merge_timeseries([shard0, shard1])
        final = merged[-1]
        assert counter_total(final, "updates_total") == 31.0
        # Per-shard contributions stay distinguishable.
        assert counter_total(final, "updates_total", {"shard": "0"}) == 10.0
        assert counter_total(final, "updates_total", {"shard": "1"}) == 21.0

    def test_merge_uses_last_carried_forward(self):
        shard0 = self._shard_series([4], base_ts=0.0)
        shard1 = self._shard_series([1, 2, 3], base_ts=1.0)
        merged = merge_timeseries([shard0, shard1])
        # Union of instants: 0.0, 1.0, 2.0, 3.0.
        assert [s["ts"] for s in merged] == [0.0, 1.0, 2.0, 3.0]
        # shard0 contributes its only sample to every later instant.
        for sample in merged[1:]:
            assert counter_total(
                sample, "updates_total", {"shard": "0"}
            ) == 4.0

    def test_merge_without_shard_labels_sums(self):
        shard0 = self._shard_series([5])
        shard1 = self._shard_series([7])
        merged = merge_timeseries([shard0, shard1], shard_labels=False)
        final = merged[-1]
        assert counter_total(final, "updates_total") == 12.0

    def test_merge_skips_empty_shards(self):
        shard0 = self._shard_series([5])
        merged = merge_timeseries([shard0, []])
        assert counter_total(merged[-1], "updates_total") == 5.0

    def test_merge_of_nothing_is_empty(self):
        assert merge_timeseries([]) == []
        assert merge_timeseries([[], []]) == []


class TestDiff:
    def test_diff_reports_counter_and_gauge_changes(self):
        before = _sample(0.0, updates=5, depth=1)["registry"]
        after = _sample(1.0, updates=9, depth=4)["registry"]
        diff = diff_samples(before, after)
        kinds = {row["family"]: row for row in diff["changes"]}
        assert kinds["updates_total"]["delta"] == 4.0
        assert kinds["queue_depth"]["after"] == 4.0
        assert diff["added_families"] == []
        assert diff["removed_families"] == []

    def test_diff_reports_family_churn(self):
        before = _sample(0.0)["registry"]
        registry = MetricsRegistry()
        registry.counter("brand_new", "x").inc()
        after = snapshot_registry(registry)
        diff = diff_samples(before, after)
        assert "brand_new" in diff["added_families"]
        assert "run_seconds" in diff["removed_families"]

    def test_render_diff_no_differences(self):
        snapshot = _sample(1.0, updates=2)["registry"]
        text = render_diff(diff_samples(snapshot, snapshot))
        assert "no differences" in text

    def test_render_diff_mentions_changes(self):
        before = _sample(0.0, updates=5)["registry"]
        after = _sample(1.0, updates=9)["registry"]
        text = render_diff(diff_samples(before, after))
        assert "updates_total" in text
        assert "+4" in text

    def test_load_snapshot_source_accepts_all_shapes(self, tmp_path):
        sample = _sample(3.0, updates=2)
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(sample["registry"]))
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps({"registry": sample["registry"]}))
        one = tmp_path / "sample.json"
        one.write_text(json.dumps(sample))
        jsonl = tmp_path / "ts.jsonl"
        write_timeseries([_sample(1.0, updates=1), sample], str(jsonl))
        for path in (raw, stats, one, jsonl):
            snapshot = load_snapshot_source(str(path))
            probe = make_sample(snapshot, 0.0)
            assert counter_total(probe, "updates_total") == 2.0

    def test_load_snapshot_source_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_snapshot_source(str(path))
