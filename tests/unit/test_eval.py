"""Unit tests for the experiment drivers (fig1, fig4 stats, LoC report)."""

import pytest

from repro.data.bgp_rfcs import BGP_RFCS, delay_years
from repro.eval import ablation, fig1, fig4, loc_report


class TestFig1:
    def test_dataset_has_forty_rfcs(self):
        assert len(BGP_RFCS) == 40
        assert len({rfc.number for rfc in BGP_RFCS}) == 40

    def test_delays_positive(self):
        assert all(delay_years(rfc) > 0 for rfc in BGP_RFCS)

    def test_cdf_monotone_and_complete(self):
        points = fig1.cdf_points()
        assert len(points) == 40
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        delays = [delay for delay, _ in points]
        assert delays == sorted(delays)

    def test_headline_numbers_match_paper_shape(self):
        stats = fig1.summary()
        # Paper: median 3.5 years, tail up to ten years.
        assert 3.0 <= stats["median_years"] <= 4.2
        assert 8.0 <= stats["max_years"] <= 11.0

    def test_render_table(self):
        text = fig1.render_table()
        assert "median" in text and "CDF" in text


class TestFig4Stats:
    def test_boxplot_stats(self):
        stats = fig4.boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats["min"] == 1.0
        assert stats["median"] == 3.0
        assert stats["max"] == 5.0
        assert stats["p25"] == 2.0
        assert stats["p75"] == 4.0

    def test_result_impacts_relative_to_native_median(self):
        result = fig4.Fig4Result("frr", "f", "jit", [1.0, 1.0], [1.1, 1.2])
        impacts = result.impacts_percent
        assert impacts[0] == pytest.approx(10.0)
        assert impacts[1] == pytest.approx(20.0)

    def test_render_table(self):
        result = fig4.Fig4Result("frr", "route_reflection", "jit", [1.0], [1.2])
        text = fig4.render_table([result], n_routes=10, runs=1)
        assert "route_reflection" in text and "+20.0%" in text


class TestLocReport:
    def test_frr_glue_bigger_than_bird(self):
        report = loc_report.glue_report()
        assert report["frr"] > report["bird"] > 0

    def test_render(self):
        text = loc_report.render_table()
        assert "FRR/BIRD ratio" in text


class TestAblationHelpers:
    def test_validation_workload_shape(self):
        checks, roas = ablation.make_validation_workload(n=100, seed=2)
        assert len(checks) == 100
        assert roas

    def test_trie_and_hash_agree_on_workload(self):
        checks, roas = ablation.make_validation_workload(n=200, seed=2)
        assert ablation.trie_check_fn(checks, roas)() == ablation.hash_check_fn(
            checks, roas
        )()

    def test_engine_fn_runs(self):
        for engine in ("interp", "jit"):
            run = ablation.engine_fn(engine)
            assert run() == run()  # deterministic arithmetic

    def test_chain_fn_reaches_default(self):
        run = ablation.chain_fn(3)
        assert run() == 0

    def test_verifier_fn_runs(self):
        ablation.verifier_fn(repeats=2)()
