"""Unit tests for the campaign driver: ddmin, corpus I/O, reports, CLI."""

import json

import pytest

from repro.cli import main
from repro.fuzz.corpus import (
    case_from_dict,
    case_to_dict,
    entry_filename,
    entry_for,
    load_entry,
    save_entry,
)
from repro.fuzz.gen import gen_codec_case, gen_engine_case, gen_host_case
from repro.fuzz.oracles import Divergence
from repro.fuzz.runner import FuzzRunner, ddmin

# -- ddmin --------------------------------------------------------------


def test_ddmin_single_culprit():
    assert ddmin(list(range(20)), lambda sub: 13 in sub) == [13]


def test_ddmin_pair_of_culprits():
    result = ddmin(list(range(32)), lambda sub: 3 in sub and 27 in sub)
    assert result == [3, 27]


def test_ddmin_order_preserved():
    result = ddmin(list("abcdef"), lambda sub: "b" in sub and "e" in sub)
    assert result == ["b", "e"]


def test_ddmin_respects_call_budget():
    calls = []

    def predicate(sub):
        calls.append(len(sub))
        return 0 in sub

    ddmin(list(range(64)), predicate, max_calls=10)
    assert len(calls) <= 10


def test_ddmin_predicate_never_sees_empty():
    seen = []

    def predicate(sub):
        seen.append(list(sub))
        return 5 in sub

    ddmin([5, 6], predicate)
    assert all(sub for sub in seen)


# -- corpus round-trips -------------------------------------------------


@pytest.mark.parametrize(
    "generate", [gen_codec_case, gen_engine_case, gen_host_case], ids=["codec", "engine", "host"]
)
def test_case_dict_roundtrip(generate):
    case = generate(11)
    encoded = case_to_dict(case)
    json.dumps(encoded)  # must be JSON-serialisable as-is
    decoded = case_from_dict(encoded)
    assert case_to_dict(decoded) == encoded
    assert type(decoded) is type(case)


def test_entry_save_load(tmp_path):
    case = gen_codec_case(3)
    divergence = Divergence("codec", "codec:example", "detail text")
    entry = entry_for(case, divergence)
    path = save_entry(tmp_path, entry)
    assert path.name == entry_filename(entry)
    assert load_entry(path) == entry


# -- runner report ------------------------------------------------------


def test_clean_report_shape():
    report = FuzzRunner(seed=7, iterations=6).run()
    assert report["clean"] is True
    assert report["divergences"] == []
    assert report["iterations_run"] == 6
    # Round-robin over the three oracle kinds: two cases each.
    assert report["cases"] == {"codec": 2, "engine": 2, "host": 2}
    assert report["seed"] == 7
    json.dumps(report)


def test_runner_rejects_unknown_oracle():
    with pytest.raises(ValueError, match="unknown oracle"):
        FuzzRunner(oracles=("codec", "nope"))


def test_time_budget_stops_early():
    report = FuzzRunner(seed=1, iterations=10_000, time_budget=0.0).run()
    assert report["iterations_run"] == 0


def test_case_seeds_are_namespaced_by_master_seed():
    a = FuzzRunner(seed=1, iterations=2, oracles=("codec",)).run()
    b = FuzzRunner(seed=2, iterations=2, oracles=("codec",)).run()
    assert a["seed"] != b["seed"]
    # Deterministic: same seed twice gives the identical report minus timing.
    a2 = FuzzRunner(seed=1, iterations=2, oracles=("codec",)).run()
    for key in ("cases", "divergences", "clean", "iterations_run"):
        assert a[key] == a2[key]


# -- CLI ----------------------------------------------------------------


def test_cli_fuzz_clean_exit_and_json(capsys, tmp_path):
    report_file = tmp_path / "report.json"
    code = main(
        [
            "fuzz",
            "--iterations",
            "6",
            "--seed",
            "7",
            "--report",
            str(report_file),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    stdout_report = json.loads(captured.out)
    assert stdout_report["clean"] is True
    on_disk = json.loads(report_file.read_text())
    assert on_disk["seed"] == stdout_report["seed"] == 7


def test_cli_fuzz_oracle_subset(capsys):
    code = main(["fuzz", "--iterations", "4", "--seed", "3", "--oracles", "codec"])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["oracles"] == ["codec"]
    assert report["cases"] == {"codec": 4}
