"""Lazy-zero heap semantics: freed bytes read as zero after reuse.

``reset_heap`` in lazy mode records a dirty high-watermark instead of
memsetting; the observable contract — every allocated block reads as
zeros until written — must be indistinguishable from the eager memset.
"""

import pytest

from repro.ebpf.memory import HEAP_BASE, SandboxViolation, VmMemory


def _dirty(memory: VmMemory, size: int, fill: int = 0xAB) -> int:
    address = memory.alloc(size)
    memory.write_bytes(address, bytes([fill]) * size)
    return address


def test_alloc_reads_zero_after_dirty_reset():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    _dirty(memory, 128)
    memory.reset_heap()
    # The raw buffer still holds the old bytes (that's the point of the
    # lazy reset)...
    assert any(memory.heap_region.data[:128])
    # ...but a fresh allocation over the dirty span reads as zeros.
    address = memory.alloc(128)
    assert memory.read_bytes(address, 128) == bytes(128)


def test_high_watermark_survives_shallow_runs():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    _dirty(memory, 200)
    memory.reset_heap()
    # A shallow run dirties less than the watermark; the watermark must
    # keep covering the deep run's leftovers.
    _dirty(memory, 24, fill=0xCD)
    memory.reset_heap()
    address = memory.alloc(200)
    assert memory.read_bytes(address, 200) == bytes(200)


def test_partial_reuse_scrubs_only_per_alloc():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    _dirty(memory, 192)
    memory.reset_heap()
    first = memory.alloc(64)
    second = memory.alloc(64)
    third = memory.alloc(64)
    for address in (first, second, third):
        assert memory.read_bytes(address, 64) == bytes(64)


def test_alloc_beyond_watermark_needs_no_scrub():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    _dirty(memory, 32)
    memory.reset_heap()
    # Allocation crossing from dirty into never-used territory: the
    # dirty prefix is scrubbed, the clean tail was never written.
    address = memory.alloc(96)
    assert memory.read_bytes(address, 96) == bytes(96)


def test_alloc_bytes_zeroes_alignment_padding():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    _dirty(memory, 64)
    memory.reset_heap()
    address = memory.alloc_bytes(b"\x11" * 13)  # aligned up to 16
    assert memory.read_bytes(address, 13) == b"\x11" * 13
    assert memory.read_bytes(address + 13, 3) == bytes(3)


@pytest.mark.parametrize("sizes", [(8, 16, 200), (240, 8), (1, 1, 1, 1)])
def test_lazy_and_eager_modes_observably_equivalent(sizes):
    lazy = VmMemory(heap_size=256, lazy_zero=True)
    eager = VmMemory(heap_size=256, lazy_zero=False)
    for memory in (lazy, eager):
        _dirty(memory, 248)
        memory.reset_heap()
    for size in sizes:
        a = lazy.alloc(size)
        b = eager.alloc(size)
        assert a == b == HEAP_BASE + (a - HEAP_BASE)
        assert lazy.read_bytes(a, size) == eager.read_bytes(b, size) == bytes(size)
    assert lazy.heap_used == eager.heap_used


def test_heap_region_identity_stable_across_resets():
    memory = VmMemory(heap_size=256, lazy_zero=True)
    buffer = memory.heap_region.data
    _dirty(memory, 64)
    memory.reset_heap()
    memory.alloc(32)
    # JIT fast paths close over the bytearray once; resets must mutate
    # it in place, never swap in a new one.
    assert memory.heap_region.data is buffer


def test_exhaustion_unchanged_by_lazy_mode():
    memory = VmMemory(heap_size=64, lazy_zero=True)
    _dirty(memory, 64)
    memory.reset_heap()
    memory.alloc(64)
    with pytest.raises(SandboxViolation, match="heap exhausted"):
        memory.alloc(8)
