"""Unit tests for repro.telemetry: metrics, trace ring, quarantine."""

import io
import json

import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    QuarantineEngine,
    QuarantinePolicy,
    Telemetry,
    TraceRing,
    log_buckets,
    render_prometheus,
)


class TestHistogram:
    def test_log_bucket_boundaries_are_geometric(self):
        bounds = log_buckets(start=1e-6, factor=2.0, count=5)
        assert bounds == [1e-6, 2e-6, 4e-6, 8e-6, 1.6e-5]

    def test_log_buckets_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            log_buckets(start=0.0)
        with pytest.raises(ValueError):
            log_buckets(factor=1.0)
        with pytest.raises(ValueError):
            log_buckets(count=0)

    def test_observe_places_values_on_le_boundaries(self):
        hist = Histogram(boundaries=[1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        # le semantics: 1.0 lands in the first bucket, 4.0 in the third.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(107.0)

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram(boundaries=[2.0, 1.0])

    def test_quantiles_walk_cumulative_buckets(self):
        hist = Histogram(boundaries=[1.0, 2.0, 4.0])
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(10):
            hist.observe(3.0)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.99) == 4.0
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == 1.0

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0 and summary["mean"] == 0.0


class TestRegistry:
    def test_counter_is_get_or_create_per_label_set(self):
        registry = MetricsRegistry()
        a1 = registry.counter("runs", "help", point="in")
        a2 = registry.counter("runs", point="in")
        b = registry.counter("runs", point="out")
        a1.inc(3)
        assert a2.value == 3 and b.value == 0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric_x", point="in")
        with pytest.raises(ValueError):
            registry.gauge("metric_x", point="in")
        with pytest.raises(ValueError):
            registry.counter("metric_x", other="label")

    def test_gauge_set_inc_and_function(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.get() == 4
        gauge.set_function(lambda: 42)
        assert gauge.get() == 42

    def test_json_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits", "hit count", point="in").inc(7)
        registry.histogram("lat", buckets=[1.0], point="in").observe(0.5)
        data = registry.to_json()
        assert data["hits"]["type"] == "counter"
        assert data["hits"]["series"][0] == {"labels": {"point": "in"}, "value": 7}
        assert data["lat"]["series"][0]["count"] == 1


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("xbgp_runs", "total runs", point="in").inc(5)
        registry.gauge("xbgp_depth", "chain depth").set(3)
        text = render_prometheus(registry)
        assert "# TYPE xbgp_runs counter" in text
        assert '# HELP xbgp_runs total runs' in text
        assert 'xbgp_runs_total{point="in"} 5' in text
        assert "# TYPE xbgp_depth gauge" in text
        assert "xbgp_depth 3" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "latency", buckets=[1.0, 2.0], ext="a")
        for value in (0.5, 0.7, 1.5, 9.0):
            hist.observe(value)
        text = render_prometheus(registry)
        assert 'lat_bucket{ext="a",le="1"} 2' in text
        assert 'lat_bucket{ext="a",le="2"} 3' in text
        assert 'lat_bucket{ext="a",le="+Inf"} 4' in text
        assert 'lat_count{ext="a"} 4' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("weird", ext='quo"te\nnl').inc()
        text = render_prometheus(registry)
        assert 'ext="quo\\"te\\nnl"' in text

    def test_help_text_escaped(self):
        # Exposition format: HELP escapes backslash and newline (but
        # not quotes, which are legal there unlike in label values).
        registry = MetricsRegistry()
        registry.counter("esc", 'line1\nline2 back\\slash "quoted"').inc()
        text = render_prometheus(registry)
        assert '# HELP esc line1\\nline2 back\\\\slash "quoted"' in text
        assert "\nline2" not in text  # no raw newline leaks into HELP

    def test_golden_exposition_output(self):
        # Pin the full rendering of a hostile registry: multi-line help,
        # label values with every escapable character, and a histogram.
        registry = MetricsRegistry()
        registry.counter("xbgp_runs", "runs\nby extension", ext='a"b\\c\nd').inc(2)
        registry.gauge("xbgp_depth", "chain depth").set(3)
        hist = registry.histogram("xbgp_lat", "latency", buckets=[1.0, 2.0], ext="x")
        hist.observe(0.5)
        hist.observe(9.0)
        assert render_prometheus(registry) == (
            "# HELP xbgp_depth chain depth\n"
            "# TYPE xbgp_depth gauge\n"
            "xbgp_depth 3\n"
            "# HELP xbgp_lat latency\n"
            "# TYPE xbgp_lat histogram\n"
            'xbgp_lat_bucket{ext="x",le="1"} 1\n'
            'xbgp_lat_bucket{ext="x",le="2"} 1\n'
            'xbgp_lat_bucket{ext="x",le="+Inf"} 2\n'
            'xbgp_lat_sum{ext="x"} 9.5\n'
            'xbgp_lat_count{ext="x"} 2\n'
            "# HELP xbgp_runs runs\\nby extension\n"
            "# TYPE xbgp_runs counter\n"
            'xbgp_runs_total{ext="a\\"b\\\\c\\nd"} 2\n'
        )


class TestTraceRing:
    def test_eviction_keeps_newest_and_counts_losses(self):
        ring = TraceRing(capacity=3)
        for index in range(10):
            ring.record("enter", "p", f"ext{index}")
        assert len(ring) == 3
        assert ring.recorded == 10
        assert ring.evicted == 7
        assert [event["extension"] for event in ring.events()] == [
            "ext7", "ext8", "ext9",
        ]
        assert ring.stats()["evicted"] == 7

    def test_record_filters_and_last(self):
        ring = TraceRing()
        ring.record("enter", "p", "a")
        ring.record("exit", "p", "a", outcome="return", verdict=0)
        ring.record("fallback", "p", "a", error="boom")
        assert len(ring.events("exit")) == 1
        assert ring.last("fallback")["error"] == "boom"
        assert ring.last()["kind"] == "fallback"
        assert ring.last("missing") is None

    def test_sequence_numbers_monotonic(self):
        ring = TraceRing(capacity=2)
        for _ in range(5):
            ring.record("enter")
        seqs = [event["seq"] for event in ring.events()]
        assert seqs == [4, 5]

    def test_jsonl_export_roundtrips(self, tmp_path):
        ring = TraceRing()
        ring.record("enter", "p", "a")
        ring.record("exit", "p", "a", outcome="next")
        path = tmp_path / "trace.jsonl"
        assert ring.export_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[1]["outcome"] == "next"
        buffer = io.StringIO()
        assert ring.export_jsonl(buffer) == 2
        assert buffer.getvalue().count("\n") == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_timestamps_off_by_default(self):
        ring = TraceRing()
        ring.record("enter", "p", "a")
        ring.record_fast("next", "p", "a")
        assert all("ts" not in event for event in ring.events())

    def test_timestamps_are_monotonic_on_both_record_paths(self):
        import time

        ring = TraceRing(timestamps=True)
        floor = time.monotonic()
        ring.record("enter", "p", "a")
        ring.record_fast("next", "p", "a")  # the hot path stamps too
        ring.record("exit", "p", "a", outcome="next")
        ceiling = time.monotonic()
        stamps = [event["ts"] for event in ring.events()]
        assert len(stamps) == 3
        assert stamps == sorted(stamps)
        assert all(floor <= ts <= ceiling for ts in stamps)

    def test_timestamps_survive_jsonl_export(self, tmp_path):
        ring = TraceRing(timestamps=True)
        ring.record("enter", "p", "a")
        ring.record_fast("exit", "p", "a")
        path = tmp_path / "trace.jsonl"
        ring.export_jsonl(str(path))
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(isinstance(event["ts"], float) for event in events)


class TestQuarantineEngine:
    def make(self, **kwargs):
        policy = QuarantinePolicy(**kwargs)
        return QuarantineEngine(policy)

    def test_disabled_policy_never_quarantines(self):
        engine = self.make()  # error_threshold=0
        health = engine.state_for("in", "crasher")
        for _ in range(100):
            assert engine.allow(health)
            engine.record_error(health)
        assert health.state == "closed"

    def test_opens_after_consecutive_errors(self):
        engine = self.make(error_threshold=3)
        health = engine.state_for("in", "crasher")
        for _ in range(3):
            engine.record_error(health)
        assert health.state == "open"
        assert engine.is_quarantined("in", "crasher")
        assert not engine.allow(health)
        assert health.quarantine_count == 1

    def test_success_resets_consecutive_errors(self):
        engine = self.make(error_threshold=3)
        health = engine.state_for("in", "flaky")
        engine.record_error(health)
        engine.record_error(health)
        engine.record_success(health)
        engine.record_error(health)
        engine.record_error(health)
        assert health.state == "closed"

    def test_probation_rearms_after_clean_trials(self):
        engine = self.make(error_threshold=2, probation_after=3, probation_successes=2)
        health = engine.state_for("in", "flaky")
        engine.record_error(health)
        engine.record_error(health)
        assert health.state == "open"
        # Three skipped invocations open the probation window.
        assert not engine.allow(health)
        assert not engine.allow(health)
        assert engine.allow(health)
        assert health.state == "half_open"
        engine.record_success(health)
        engine.allow(health)
        engine.record_success(health)
        assert health.state == "closed"
        assert health.consecutive_errors == 0

    def test_probation_failure_reopens(self):
        engine = self.make(error_threshold=2, probation_after=1)
        health = engine.state_for("in", "crasher")
        engine.record_error(health)
        engine.record_error(health)
        assert engine.allow(health)  # immediately on probation
        engine.record_error(health)
        assert health.state == "open"
        assert health.quarantine_count == 2

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(error_threshold=-1)
        with pytest.raises(ValueError):
            QuarantinePolicy(probation_successes=0)


class TestTelemetryFacade:
    def test_transitions_traced_and_counted(self):
        telemetry = Telemetry(policy=QuarantinePolicy(error_threshold=1))
        health = telemetry.health.state_for("bgp_inbound_filter", "crasher")
        telemetry.health.record_error(health)
        event = telemetry.trace.last("quarantine")
        assert event["to_state"] == "open" and event["extension"] == "crasher"
        snapshot = telemetry.snapshot()
        assert snapshot["health"][0]["state"] == "open"
        assert "xbgp_quarantine_transitions" in snapshot["metrics"]

    def test_snapshot_is_json_serializable(self):
        telemetry = Telemetry()
        telemetry.registry.histogram("lat", point="in").observe(1e-5)
        telemetry.trace.record("enter", "in", "a")
        json.dumps(telemetry.snapshot())

    def test_render_prometheus_delegates(self):
        telemetry = Telemetry()
        telemetry.registry.counter("xbgp_runs").inc()
        assert "xbgp_runs_total 1" in telemetry.render_prometheus()
