"""Unit tests for the discrete-event engine and network wiring."""

import pytest

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.sim import EventScheduler, Network


class TestScheduler:
    def test_fifo_among_equal_times(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(0, lambda: order.append("a"))
        scheduler.schedule(0, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run()
        assert order == ["early", "late"]
        assert scheduler.now == 2.0

    def test_nested_scheduling(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: scheduler.schedule(1.0, lambda: order.append("inner")))
        scheduler.run()
        assert order == ["inner"]
        assert scheduler.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1, lambda: None)

    def test_max_events_bound(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(1, rearm)

        scheduler.schedule(0, rearm)
        processed = scheduler.run(max_events=5)
        assert processed == 5
        assert scheduler.pending() == 1

    def test_run_until(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append(1))
        scheduler.schedule(5.0, lambda: order.append(5))
        scheduler.run_until(2.0)
        assert order == [1]
        assert scheduler.now == 2.0


class TestNetwork:
    def _pair(self):
        network = Network()
        a = BirdDaemon(asn=65001, router_id="1.1.1.1")
        b = BirdDaemon(asn=65002, router_id="2.2.2.2")
        network.add_router("a", a)
        network.add_router("b", b)
        network.connect("a", "10.0.0.1", "b", "10.0.0.2")
        return network, a, b

    def test_duplicate_router_rejected(self):
        network = Network()
        network.add_router("a", BirdDaemon(asn=1, router_id="1.1.1.1"))
        with pytest.raises(ValueError):
            network.add_router("a", BirdDaemon(asn=2, router_id="2.2.2.2"))

    def test_route_propagates(self):
        network, a, b = self._pair()
        network.establish_all()
        a.originate(Prefix.parse("10.9.0.0/16"))
        network.run()
        assert b.loc_rib.lookup(Prefix.parse("10.9.0.0/16")) is not None

    def test_link_failure_drops_in_flight_and_sessions(self):
        network, a, b = self._pair()
        network.establish_all()
        a.originate(Prefix.parse("10.9.0.0/16"))
        network.run()
        network.fail_link("a", "b")
        assert b.loc_rib.lookup(Prefix.parse("10.9.0.0/16")) is None
        # Messages sent on the dead link vanish.
        a.originate(Prefix.parse("10.8.0.0/16"))
        network.run()
        assert b.loc_rib.lookup(Prefix.parse("10.8.0.0/16")) is None

    def test_link_restore_resyncs(self):
        network, a, b = self._pair()
        network.establish_all()
        a.originate(Prefix.parse("10.9.0.0/16"))
        network.run()
        network.fail_link("a", "b")
        network.restore_link("a", "b")
        assert b.loc_rib.lookup(Prefix.parse("10.9.0.0/16")) is not None

    def test_unknown_link_rejected(self):
        network, a, b = self._pair()
        with pytest.raises(KeyError):
            network.fail_link("a", "zz")

    def test_neighbor_config_accessor(self):
        network, a, b = self._pair()
        neighbor = network.neighbor_config("a", "10.0.0.2")
        assert neighbor.peer_asn == 65002
