"""Unit tests for libxbgp core: ABI, extension state, manifest, VMM."""

import json
import struct

import pytest

from repro.bgp.peer import Neighbor
from repro.core import (
    AttachError,
    ExecutionContext,
    ExtensionCode,
    HELPER_IDS,
    InsertionPoint,
    Manifest,
    ManifestError,
    NativeExtensionCode,
    NextRequested,
    VirtualMachineManager,
    VmmConfig,
    XbgpProgram,
    build_helper_table,
)
from repro.core.abi import (
    PEER_INFO_SIZE,
    pack_arg,
    pack_attr,
    pack_nexthop_info,
    pack_peer_info,
)
from repro.core.extension import ProgramState
from repro.core.host_interface import HostImplementation
from repro.ebpf.assembler import assemble
from repro.ebpf.memory import SandboxViolation


class NullHost(HostImplementation):
    name = "null"

    def __init__(self):
        self.logged = []
        self.attrs = {}

    def get_attr(self, ctx, code):
        return self.attrs.get(code)

    def set_attr(self, ctx, code, flags, value):
        from repro.bgp.attributes import PathAttribute

        self.attrs[code] = PathAttribute(flags, code, value)
        return True

    def add_attr(self, ctx, code, flags, value):
        if code in self.attrs:
            return False
        return self.set_attr(ctx, code, flags, value)

    def remove_attr(self, ctx, code):
        return self.attrs.pop(code, None) is not None

    def get_nexthop(self, ctx):
        return 0x0A000001, 25, True

    def get_xtra(self, ctx, key):
        return b"value" if key == "key" else None

    def rib_announce(self, ctx, prefix, next_hop):
        return True

    def log(self, message):
        self.logged.append(message)


class TestAbi:
    def test_helper_ids_are_stable_and_unique(self):
        assert len(set(HELPER_IDS.values())) == len(HELPER_IDS)
        # A few anchors of the ABI — changing these breaks bytecode.
        assert HELPER_IDS["next"] == 1
        assert HELPER_IDS["get_peer_info"] == 3
        assert HELPER_IDS["write_buf"] == 10

    def test_pack_peer_info_layout(self):
        neighbor = Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001, rr_client=True)
        blob = pack_peer_info(neighbor)
        assert len(blob) == PEER_INFO_SIZE
        fields = struct.unpack("<9I", blob)
        assert fields[0] == 2  # EBGP_SESSION
        assert fields[1] == 65002
        assert fields[7] == 1  # rr_client

    def test_pack_nexthop(self):
        assert struct.unpack("<3I", pack_nexthop_info(5, 10, True)) == (5, 10, 1)

    def test_pack_attr_header(self):
        blob = pack_attr(9, 0x80, b"\xab\xcd")
        assert blob[:4] == struct.pack("<BBH", 9, 0x80, 2)
        assert blob[4:] == b"\xab\xcd"

    def test_pack_arg(self):
        assert pack_arg(b"xy") == struct.pack("<I", 2) + b"xy"


class TestProgramState:
    def test_shm_new_and_get(self):
        state = ProgramState(shared_size=64)
        address = state.shm_new(1, 16)
        assert state.shm_get(1) == address
        assert state.shm_get(2) == 0

    def test_shm_duplicate_key_rejected(self):
        state = ProgramState(shared_size=64)
        state.shm_new(1, 8)
        with pytest.raises(SandboxViolation):
            state.shm_new(1, 8)

    def test_shm_exhaustion(self):
        state = ProgramState(shared_size=16)
        state.shm_new(1, 16)
        with pytest.raises(SandboxViolation):
            state.shm_new(2, 8)

    def test_maps(self):
        state = ProgramState()
        map_id = state.map_new()
        state.map_update(map_id, 5, 100)
        state.map_update(map_id, 5, 200)
        assert state.map_lookup(map_id, 5) == 100
        assert state.map_lookup(map_id, 5, index=1) == 200
        assert state.map_lookup(map_id, 5, index=2) is None
        assert state.map_lookup(map_id, 9) is None
        assert state.map_size(map_id) == 1

    def test_unknown_map_rejected(self):
        with pytest.raises(KeyError):
            ProgramState().map_update(9, 1, 1)


class TestManifest:
    def _spec(self, **overrides):
        spec = {
            "name": "code1",
            "insertion_point": "BGP_INBOUND_FILTER",
            "seq": 0,
            "helpers": ["next"],
            "source": "u64 f(u64 a) { next(); return 0; }",
        }
        spec.update(overrides)
        return spec

    def test_json_roundtrip(self):
        manifest = Manifest(name="m", codes=[self._spec()], maps={"t": [[1, 2]]})
        again = Manifest.from_json(manifest.to_json())
        assert again.name == "m"
        assert again.maps == {"t": [[1, 2]]}

    def test_load_compiles_source(self):
        program = Manifest(name="m", codes=[self._spec()]).load()
        assert len(program.codes) == 1
        assert program.codes[0].instructions
        assert program.codes[0].layout_hint

    def test_load_accepts_hex_bytecode(self):
        from repro.ebpf.isa import encode_program

        blob = encode_program(assemble("mov r0, 0\nexit")).hex()
        spec = self._spec()
        del spec["source"]
        spec["bytecode"] = blob
        program = Manifest(name="m", codes=[spec]).load()
        assert len(program.codes[0].instructions) == 2
        assert not program.codes[0].layout_hint

    def test_rejects_both_source_and_bytecode(self):
        with pytest.raises(ManifestError):
            Manifest(name="m", codes=[self._spec(bytecode="b70000000000000095000000000000")])

    def test_rejects_unknown_helper(self):
        with pytest.raises(ManifestError, match="unknown helpers"):
            Manifest(name="m", codes=[self._spec(helpers=["teleport"])])

    def test_rejects_bad_insertion_point(self):
        with pytest.raises(ManifestError):
            Manifest(name="m", codes=[self._spec(insertion_point="BGP_NOPE")])

    def test_rejects_duplicate_code_names(self):
        with pytest.raises(ManifestError, match="duplicate"):
            Manifest(name="m", codes=[self._spec(), self._spec()])

    def test_rejects_no_codes(self):
        with pytest.raises(ManifestError):
            Manifest(name="m", codes=[])

    def test_rejects_bad_json(self):
        with pytest.raises(ManifestError):
            Manifest.from_json("{")

    def test_map_constants_exposed(self):
        manifest = Manifest(
            name="m",
            codes=[
                self._spec(
                    helpers=["map_lookup"],
                    source="u64 f(u64 a) { return map_lookup(MAP_T, 1); }",
                )
            ],
            maps={"t": [[1, 42]]},
        )
        program = manifest.load()
        assert program.map_constants() == {"MAP_T": 1}


class TestVmm:
    def _code(self, name, source, helpers=("next",), point=InsertionPoint.BGP_INBOUND_FILTER, seq=0):
        from repro.core.abi import PLUGIN_CONSTANTS
        from repro.xc import compile_source

        instructions = compile_source(source, HELPER_IDS, PLUGIN_CONSTANTS)
        return ExtensionCode(name, instructions, list(helpers), point, seq=seq, layout_hint=True)

    def test_default_runs_when_nothing_attached(self):
        vmm = VirtualMachineManager(NullHost())
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 77

    def test_extension_result_returned(self):
        vmm = VirtualMachineManager(NullHost())
        code = self._code("x", "u64 f(u64 a) { return 5; }", helpers=())
        vmm.attach_program(XbgpProgram("p", [code]))
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 5

    def test_next_falls_back_to_default(self):
        vmm = VirtualMachineManager(NullHost())
        code = self._code("x", "u64 f(u64 a) { next(); return 5; }")
        vmm.attach_program(XbgpProgram("p", [code]))
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 77

    def test_chain_order_and_next(self):
        vmm = VirtualMachineManager(NullHost())
        first = self._code("first", "u64 f(u64 a) { next(); return 1; }", seq=0)
        second = self._code("second", "u64 f(u64 a) { return 2; }", helpers=(), seq=1)
        vmm.attach_program(XbgpProgram("p", [first, second]))
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 2
        assert vmm.attached_codes(InsertionPoint.BGP_INBOUND_FILTER) == ["first", "second"]

    def test_error_falls_back_and_notifies(self):
        host = NullHost()
        vmm = VirtualMachineManager(host)
        # Dereference of NULL: sandbox violation at runtime.
        code = self._code("bad", "u64 f(u64 a) { return *(u64 *)(0); }", helpers=())
        vmm.attach_program(XbgpProgram("p", [code]))
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 77
        assert vmm.fallbacks == 1
        assert vmm.stats()["bad"]["errors"] == 1
        assert any("falling back" in line for line in host.logged)

    def test_attach_rejects_undeclared_helper(self):
        vmm = VirtualMachineManager(NullHost())
        # Bytecode calls get_attr but the manifest only declares next.
        code = self._code(
            "sneaky", "u64 f(u64 a) { return get_attr(1); }", helpers=("next",)
        )
        with pytest.raises(AttachError, match="verification"):
            vmm.attach_program(XbgpProgram("p", [code]))

    def test_attach_rejects_unknown_helper_name(self):
        code = ExtensionCode("x", assemble("mov r0, 0\nexit"), ["warp"], InsertionPoint.BGP_DECISION)
        with pytest.raises(AttachError):
            VirtualMachineManager(NullHost()).attach_program(XbgpProgram("p", [code]))

    def test_attach_rejects_duplicate_program(self):
        vmm = VirtualMachineManager(NullHost())
        code = self._code("x", "u64 f(u64 a) { return 0; }", helpers=())
        vmm.attach_program(XbgpProgram("p", [code]))
        with pytest.raises(AttachError, match="already"):
            vmm.attach_program(XbgpProgram("p", [self._code("y", "u64 f(u64 a) { return 0; }", helpers=())]))

    def test_detach_program(self):
        vmm = VirtualMachineManager(NullHost())
        code = self._code("x", "u64 f(u64 a) { return 5; }", helpers=())
        vmm.attach_program(XbgpProgram("p", [code]))
        vmm.detach_program("p")
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 77) == 77
        with pytest.raises(KeyError):
            vmm.detach_program("p")

    def test_native_extension_code(self):
        vmm = VirtualMachineManager(NullHost())

        def logic(ctx, host):
            return 123

        vmm.attach_program(
            XbgpProgram("p", [NativeExtensionCode("py", logic, InsertionPoint.BGP_DECISION)])
        )
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_DECISION)
        assert vmm.run(ctx, lambda: 0) == 123

    def test_native_extension_next(self):
        vmm = VirtualMachineManager(NullHost())

        def logic(ctx, host):
            raise NextRequested()

        vmm.attach_program(
            XbgpProgram("p", [NativeExtensionCode("py", logic, InsertionPoint.BGP_DECISION)])
        )
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_DECISION)
        assert vmm.run(ctx, lambda: 9) == 9

    def test_native_extension_error_falls_back(self):
        host = NullHost()
        vmm = VirtualMachineManager(host)

        def logic(ctx, host_):
            raise RuntimeError("oops")

        vmm.attach_program(
            XbgpProgram("p", [NativeExtensionCode("py", logic, InsertionPoint.BGP_DECISION)])
        )
        ctx = ExecutionContext(host, InsertionPoint.BGP_DECISION)
        assert vmm.run(ctx, lambda: 9) == 9
        assert vmm.fallbacks == 1

    def test_interp_engine_configurable(self):
        vmm = VirtualMachineManager(NullHost(), VmmConfig(engine="interp"))
        code = self._code("x", "u64 f(u64 a) { return 5; }", helpers=())
        vmm.attach_program(XbgpProgram("p", [code]))
        ctx = ExecutionContext(vmm.host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 5

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            VmmConfig(engine="warp")


class TestHelpers:
    def _vmm_with(self, source, helpers, maps=None):
        manifest = Manifest(
            name="t",
            codes=[
                {
                    "name": "t",
                    "insertion_point": "BGP_INBOUND_FILTER",
                    "seq": 0,
                    "helpers": list(helpers),
                    "source": source,
                }
            ],
            maps=maps or {},
        )
        host = NullHost()
        vmm = VirtualMachineManager(host)
        vmm.attach_program(manifest.load())
        return vmm, host

    def test_get_xtra_and_strings(self):
        source = """
        u64 f(u64 a) {
            u64 v = get_xtra("key");
            if (v == 0) { return 0; }
            u64 len = *(u32 *)(v);          // arg block: length header
            u64 first = *(u8 *)(v + 4);     // then the payload bytes
            return len * 256 + first;
        }
        """
        vmm, host = self._vmm_with(source, ["get_xtra"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 5 * 256 + ord("v")

    def test_get_xtra_missing_returns_null(self):
        source = 'u64 f(u64 a) { return get_xtra("nope"); }'
        vmm, host = self._vmm_with(source, ["get_xtra"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 0

    def test_get_nexthop_struct(self):
        source = """
        u64 f(u64 a) {
            u64 nh = get_nexthop(0);
            return *(u32 *)(nh + 4);
        }
        """
        vmm, host = self._vmm_with(source, ["get_nexthop"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 25

    def test_add_attr_then_get_attr(self):
        source = """
        u64 f(u64 a) {
            u8 buf[4];
            *(u32 *)(buf) = 0xdeadbeef;
            add_attr(243, 192, buf, 4);
            u64 attr = get_attr(243);
            if (attr == 0) { return 0; }
            return *(u16 *)(attr + 2);
        }
        """
        vmm, host = self._vmm_with(source, ["add_attr", "get_attr"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 4  # length field of the view

    def test_write_buf_requires_encode_context(self):
        source = """
        u64 f(u64 a) {
            u8 buf[2];
            *(u16 *)(buf) = 7;
            return write_buf(buf, 2);
        }
        """
        vmm, host = self._vmm_with(source, ["write_buf"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        # No out_buffer: helper errors, VMM falls back to default.
        assert vmm.run(ctx, lambda: 55) == 55
        assert vmm.fallbacks == 1
        out = bytearray()
        ctx2 = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER, out_buffer=out)
        # With a buffer the bytecode writes two bytes and returns the count.
        assert vmm.run(ctx2, lambda: 55) == 2
        assert bytes(out) == (7).to_bytes(2, "little")

    def test_maps_preloaded_from_manifest(self):
        source = """
        u64 f(u64 a) {
            u64 hit = map_lookup(MAP_T, 5);
            u64 miss = map_lookup(MAP_T, 6);
            if (miss + 1 != 0) { return 0; }
            return hit;
        }
        """
        vmm, host = self._vmm_with(source, ["map_lookup"], maps={"t": [[5, 99]]})
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 99

    def test_shared_memory_persists_between_runs(self):
        source = """
        u64 f(u64 a) {
            u64 p = ctx_shmget(1);
            if (p == 0) { p = ctx_shmnew(1, 8); }
            *(u64 *)(p) = *(u64 *)(p) + 1;
            return *(u64 *)(p);
        }
        """
        vmm, host = self._vmm_with(source, ["ctx_shmget", "ctx_shmnew"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        assert vmm.run(ctx, lambda: 0) == 1
        assert vmm.run(ctx, lambda: 0) == 2
        assert vmm.run(ctx, lambda: 0) == 3

    def test_ebpf_print_reaches_host_log(self):
        source = 'u64 f(u64 a) { ebpf_print("hello"); return 0; }'
        vmm, host = self._vmm_with(source, ["ebpf_print"])
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        vmm.run(ctx, lambda: 0)
        assert any("hello" in line for line in host.logged)

    def test_helper_isolation_between_programs(self):
        # Two programs get distinct shared memory: counters don't mix.
        source = """
        u64 f(u64 a) {
            u64 p = ctx_shmget(1);
            if (p == 0) { p = ctx_shmnew(1, 8); }
            *(u64 *)(p) = *(u64 *)(p) + 1;
            return *(u64 *)(p);
        }
        """
        host = NullHost()
        vmm = VirtualMachineManager(host)
        for name in ("p1", "p2"):
            manifest = Manifest(
                name=name,
                codes=[
                    {
                        "name": f"{name}_code",
                        "insertion_point": "BGP_INBOUND_FILTER",
                        "seq": 0 if name == "p1" else 1,
                        "helpers": ["ctx_shmget", "ctx_shmnew"],
                        "source": source,
                    }
                ],
            )
            vmm.attach_program(manifest.load())
        ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)
        # Only the first program in the chain returns; run twice.
        assert vmm.run(ctx, lambda: 0) == 1
        assert vmm.run(ctx, lambda: 0) == 2
