"""Unit tests for repro.bgp.messages."""

import pytest

from repro.bgp.aspath import AsPath
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.constants import BGP_HEADER_SIZE, MessageType, Origin
from repro.bgp.messages import (
    CAP_FOUR_OCTET_AS,
    Capability,
    KeepaliveMessage,
    MessageDecodeError,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
    encode_header,
    split_stream,
)
from repro.bgp.prefix import Prefix, parse_ipv4


def roundtrip(message):
    decoded, consumed = decode_message(message.encode())
    assert consumed == len(message.encode())
    return decoded


class TestHeader:
    def test_header_size(self):
        assert len(encode_header(MessageType.KEEPALIVE, b"")) == BGP_HEADER_SIZE

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            encode_header(MessageType.UPDATE, b"\x00" * 5000)

    def test_decode_rejects_bad_marker(self):
        data = bytearray(KeepaliveMessage().encode())
        data[0] = 0
        with pytest.raises(MessageDecodeError):
            decode_message(bytes(data))

    def test_decode_rejects_bad_type(self):
        data = bytearray(KeepaliveMessage().encode())
        data[18] = 99
        with pytest.raises(MessageDecodeError):
            decode_message(bytes(data))

    def test_decode_rejects_short_length(self):
        data = bytearray(KeepaliveMessage().encode())
        data[16:18] = (10).to_bytes(2, "big")
        with pytest.raises(MessageDecodeError):
            decode_message(bytes(data))


class TestOpen:
    def test_roundtrip_plain(self):
        message = OpenMessage(65001, 90, parse_ipv4("1.1.1.1"))
        decoded = roundtrip(message)
        assert decoded.asn == 65001
        assert decoded.hold_time == 90
        assert decoded.router_id == parse_ipv4("1.1.1.1")

    def test_roundtrip_capabilities(self):
        message = OpenMessage.for_speaker(65001, parse_ipv4("1.1.1.1"))
        decoded = roundtrip(message)
        assert decoded.capabilities == message.capabilities

    def test_four_octet_as_capability(self):
        message = OpenMessage.for_speaker(4200000000, parse_ipv4("1.1.1.1"))
        assert message.asn == 23456  # AS_TRANS in the 2-octet field
        decoded = roundtrip(message)
        assert decoded.effective_asn() == 4200000000

    def test_effective_asn_without_capability(self):
        assert OpenMessage(65001, 90, 1).effective_asn() == 65001

    def test_rejects_wrong_version(self):
        data = bytearray(OpenMessage(65001, 90, 1).encode())
        data[BGP_HEADER_SIZE] = 3  # version field
        with pytest.raises(MessageDecodeError):
            decode_message(bytes(data))


class TestUpdate:
    def _attrs(self):
        return [
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65001])),
            make_next_hop(parse_ipv4("10.0.0.1")),
        ]

    def test_roundtrip_announcement(self):
        message = UpdateMessage(
            attributes=self._attrs(),
            nlri=[Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.2.0/24")],
        )
        decoded = roundtrip(message)
        assert decoded.nlri == message.nlri
        assert decoded.attributes == message.attributes

    def test_roundtrip_withdrawal(self):
        message = UpdateMessage(withdrawn=[Prefix.parse("10.0.0.0/8")])
        decoded = roundtrip(message)
        assert decoded.withdrawn == message.withdrawn
        assert not decoded.nlri

    def test_end_of_rib(self):
        assert roundtrip(UpdateMessage.end_of_rib()).is_end_of_rib()
        assert not UpdateMessage(nlri=[Prefix.parse("1.0.0.0/8")]).is_end_of_rib()

    def test_attribute_lookup(self):
        message = UpdateMessage(attributes=self._attrs())
        assert message.attribute(1) is not None
        assert message.attribute(200) is None

    def test_rejects_truncated(self):
        encoded = UpdateMessage(attributes=self._attrs(), nlri=[Prefix.parse("1.0.0.0/8")]).encode()
        # Corrupt the attributes length to point past the end.
        data = bytearray(encoded)
        data[BGP_HEADER_SIZE + 2 : BGP_HEADER_SIZE + 4] = (4000).to_bytes(2, "big")
        with pytest.raises(MessageDecodeError):
            decode_message(bytes(data))


class TestNotificationAndKeepalive:
    def test_notification_roundtrip(self):
        message = NotificationMessage(6, 2, b"bye")
        decoded = roundtrip(message)
        assert (decoded.code, decoded.subcode, decoded.data) == (6, 2, b"bye")

    def test_keepalive_roundtrip(self):
        assert roundtrip(KeepaliveMessage()) == KeepaliveMessage()

    def test_keepalive_rejects_body(self):
        data = encode_header(MessageType.KEEPALIVE, b"x")
        with pytest.raises(MessageDecodeError):
            decode_message(data)


class TestRouteRefresh:
    def test_roundtrip(self):
        from repro.bgp.messages import RouteRefreshMessage

        message = RouteRefreshMessage(afi=1, safi=1)
        assert roundtrip(message) == message

    def test_rejects_bad_length(self):
        from repro.bgp.messages import RouteRefreshMessage

        data = encode_header(MessageType.ROUTE_REFRESH, b"\x00\x01\x00")
        with pytest.raises(MessageDecodeError):
            decode_message(data)


class TestSplitStream:
    def test_multiple_messages_one_buffer(self):
        buffer = bytearray(KeepaliveMessage().encode() * 3)
        messages = split_stream(buffer)
        assert len(messages) == 3
        assert not buffer

    def test_partial_message_left_in_buffer(self):
        encoded = KeepaliveMessage().encode()
        buffer = bytearray(encoded + encoded[:10])
        messages = split_stream(buffer)
        assert len(messages) == 1
        assert bytes(buffer) == encoded[:10]

    def test_empty_buffer(self):
        assert split_stream(bytearray()) == []

    def test_reassembly_across_chunks(self):
        encoded = UpdateMessage(withdrawn=[Prefix.parse("10.0.0.0/8")]).encode()
        buffer = bytearray()
        results = []
        for byte in encoded:
            buffer.append(byte)
            results.extend(split_stream(buffer))
        assert len(results) == 1
        assert results[0].withdrawn == (Prefix.parse("10.0.0.0/8"),)
