"""Unit tests for repro.bgp.attributes and communities."""

import pytest

from repro.bgp.aspath import AsPath
from repro.bgp.attributes import (
    AttributeDecodeError,
    PathAttribute,
    decode_attributes,
    decode_geoloc,
    describe,
    encode_attributes,
    make_as_path,
    make_atomic_aggregate,
    make_cluster_list,
    make_communities,
    make_geoloc,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
    make_originator_id,
)
from repro.bgp.communities import (
    Community,
    CommunityDecodeError,
    LargeCommunity,
    community,
    decode_communities,
    decode_large_communities,
    encode_communities,
    encode_large_communities,
)
from repro.bgp.constants import AttrTypeCode, Origin, WellKnownCommunity
from repro.bgp.prefix import parse_ipv4


class TestCommunities:
    def test_community_halves(self):
        c = community(65001, 300)
        assert c.asn == 65001 and c.value == 300

    def test_community_str(self):
        assert str(community(65001, 300)) == "65001:300"

    def test_well_known_str(self):
        assert str(Community(int(WellKnownCommunity.NO_EXPORT))) == "NO_EXPORT"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            community(70000, 1)
        with pytest.raises(ValueError):
            Community(1 << 32)

    def test_codec_roundtrip_sorted_dedup(self):
        values = [community(2, 2), community(1, 1), community(2, 2)]
        decoded = decode_communities(encode_communities(values))
        assert decoded == frozenset({community(1, 1), community(2, 2)})

    def test_decode_rejects_ragged(self):
        with pytest.raises(CommunityDecodeError):
            decode_communities(b"\x00\x01\x02")

    def test_large_community_roundtrip(self):
        values = [LargeCommunity(65001, 1, 2), LargeCommunity(65001, 3, 4)]
        assert decode_large_communities(encode_large_communities(values)) == frozenset(
            values
        )

    def test_large_community_str(self):
        assert str(LargeCommunity(1, 2, 3)) == "1:2:3"

    def test_large_decode_rejects_ragged(self):
        with pytest.raises(CommunityDecodeError):
            decode_large_communities(b"\x00" * 13)


class TestPathAttribute:
    def test_flag_predicates(self):
        attr = PathAttribute(0xC0, 99, b"x")
        assert attr.optional and attr.transitive and not attr.partial

    def test_encode_short_form(self):
        attr = PathAttribute(0x40, 1, b"\x00")
        assert attr.encode() == bytes([0x40, 1, 1, 0])

    def test_encode_extended_length(self):
        attr = PathAttribute(0xC0, 99, b"\x00" * 300)
        encoded = attr.encode()
        assert encoded[0] & 0x10  # extended length set
        assert int.from_bytes(encoded[2:4], "big") == 300

    def test_as_u32_wrong_size(self):
        with pytest.raises(AttributeDecodeError):
            PathAttribute(0x40, 5, b"\x00\x01").as_u32()

    def test_block_roundtrip(self):
        attrs = [
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65001, 65002])),
            make_next_hop(parse_ipv4("10.0.0.1")),
            make_med(50),
            make_local_pref(200),
            make_communities([community(65001, 1)]),
            make_originator_id(parse_ipv4("1.1.1.1")),
            make_cluster_list([parse_ipv4("2.2.2.2"), parse_ipv4("3.3.3.3")]),
            make_atomic_aggregate(),
        ]
        decoded = decode_attributes(encode_attributes(attrs))
        assert sorted(decoded, key=lambda a: a.type_code) == sorted(
            attrs, key=lambda a: a.type_code
        )

    def test_block_roundtrip_extended_length(self):
        big = PathAttribute(0xC0, 200, bytes(range(256)) * 2)
        decoded = decode_attributes(encode_attributes([big]))
        assert decoded == [big]

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(AttributeDecodeError):
            decode_attributes(b"\x40")

    def test_decode_rejects_truncated_body(self):
        with pytest.raises(AttributeDecodeError):
            decode_attributes(bytes([0x40, 1, 5, 0]))

    def test_typed_views(self):
        assert make_origin(Origin.EGP).as_origin() == Origin.EGP
        assert make_med(7).as_u32() == 7
        path = AsPath.from_sequence([1, 2])
        assert make_as_path(path).as_path() == path
        assert make_cluster_list([5, 6]).as_cluster_list() == (5, 6)


class TestGeoLoc:
    def test_roundtrip(self):
        attr = make_geoloc(50.8503, 4.3517)
        lat, lon = decode_geoloc(attr)
        assert abs(lat - 50.8503) < 1e-6
        assert abs(lon - 4.3517) < 1e-6

    def test_negative_coordinates(self):
        lat, lon = decode_geoloc(make_geoloc(-33.8688, -70.6693))
        assert lat < 0 and lon < 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_geoloc(91.0, 0.0)
        with pytest.raises(ValueError):
            make_geoloc(0.0, 181.0)

    def test_flags_optional_transitive(self):
        attr = make_geoloc(0.0, 0.0)
        assert attr.optional and attr.transitive
        assert attr.type_code == AttrTypeCode.GEOLOC

    def test_decode_rejects_bad_size(self):
        with pytest.raises(AttributeDecodeError):
            decode_geoloc(PathAttribute(0xC0, AttrTypeCode.GEOLOC, b"\x00" * 7))


class TestDescribe:
    def test_describe_known(self):
        assert describe(make_origin(Origin.IGP)) == "ORIGIN=IGP"
        assert "10.0.0.1" in describe(make_next_hop(parse_ipv4("10.0.0.1")))
        assert "GEOLOC" in describe(make_geoloc(1.0, 2.0))

    def test_describe_unknown_code(self):
        assert describe(PathAttribute(0xC0, 222, b"\xab")) == "attr#222=ab"
