"""Unit tests for ROA tables and RFC 6811 validation."""

import pytest

from repro.bgp.constants import RouteOriginValidity
from repro.bgp.prefix import Prefix
from repro.bgp.roa import (
    HashRoaTable,
    Roa,
    TrieRoaTable,
    dump_roa_file,
    load_roa_file,
    make_roas_for_prefixes,
)


def p(text):
    return Prefix.parse(text)


class TestRoa:
    def test_default_max_length_is_prefix_length(self):
        assert Roa(p("10.0.0.0/16"), 65001).max_length == 16

    def test_rejects_max_length_below_prefix(self):
        with pytest.raises(ValueError):
            Roa(p("10.0.0.0/16"), 65001, max_length=8)

    def test_authorizes_exact(self):
        roa = Roa(p("10.0.0.0/16"), 65001, max_length=24)
        assert roa.authorizes(p("10.0.0.0/16"), 65001)

    def test_authorizes_within_maxlen(self):
        roa = Roa(p("10.0.0.0/16"), 65001, max_length=24)
        assert roa.authorizes(p("10.0.5.0/24"), 65001)

    def test_rejects_beyond_maxlen(self):
        roa = Roa(p("10.0.0.0/16"), 65001, max_length=20)
        assert not roa.authorizes(p("10.0.5.0/24"), 65001)

    def test_rejects_wrong_origin(self):
        roa = Roa(p("10.0.0.0/16"), 65001)
        assert not roa.authorizes(p("10.0.0.0/16"), 65002)

    def test_as0_never_authorizes(self):
        roa = Roa(p("10.0.0.0/16"), 0)
        assert not roa.authorizes(p("10.0.0.0/16"), 0)


@pytest.mark.parametrize("table_cls", [TrieRoaTable, HashRoaTable])
class TestTables:
    def test_not_found_when_empty(self, table_cls):
        table = table_cls()
        assert table.validate(p("10.0.0.0/16"), 65001) == RouteOriginValidity.NOT_FOUND

    def test_valid(self, table_cls):
        table = table_cls()
        table.add(Roa(p("10.0.0.0/16"), 65001, max_length=24))
        assert table.validate(p("10.0.3.0/24"), 65001) == RouteOriginValidity.VALID

    def test_invalid_wrong_origin(self, table_cls):
        table = table_cls()
        table.add(Roa(p("10.0.0.0/16"), 65001))
        assert table.validate(p("10.0.0.0/16"), 65999) == RouteOriginValidity.INVALID

    def test_invalid_too_specific(self, table_cls):
        table = table_cls()
        table.add(Roa(p("10.0.0.0/16"), 65001, max_length=16))
        assert table.validate(p("10.0.0.0/20"), 65001) == RouteOriginValidity.INVALID

    def test_any_valid_roa_suffices(self, table_cls):
        table = table_cls()
        table.add(Roa(p("10.0.0.0/16"), 65999))
        table.add(Roa(p("10.0.0.0/8"), 65001, max_length=24))
        assert table.validate(p("10.0.0.0/16"), 65001) == RouteOriginValidity.VALID

    def test_remove(self, table_cls):
        table = table_cls()
        roa = Roa(p("10.0.0.0/16"), 65001)
        table.add(roa)
        table.remove(roa)
        assert len(table) == 0
        assert table.validate(p("10.0.0.0/16"), 65001) == RouteOriginValidity.NOT_FOUND

    def test_remove_missing_raises(self, table_cls):
        with pytest.raises(KeyError):
            table_cls().remove(Roa(p("10.0.0.0/16"), 65001))

    def test_duplicate_add_ignored(self, table_cls):
        table = table_cls()
        roa = Roa(p("10.0.0.0/16"), 65001)
        table.add(roa)
        table.add(roa)
        assert len(table) == 1

    def test_all_roas(self, table_cls):
        table = table_cls()
        roas = {Roa(p("10.0.0.0/16"), 1), Roa(p("11.0.0.0/8"), 2)}
        table.extend(roas)
        assert set(table.all_roas()) == roas

    def test_covering_includes_less_specifics(self, table_cls):
        table = table_cls()
        short = Roa(p("10.0.0.0/8"), 1)
        long = Roa(p("10.0.0.0/16"), 2)
        table.extend([short, long])
        found = set(table.covering(p("10.0.0.0/24")))
        assert found == {short, long}


class TestTableEquivalence:
    def test_trie_and_hash_agree(self):
        checks = [(p(f"10.{i}.0.0/16"), 65000 + i) for i in range(50)]
        roas = make_roas_for_prefixes(checks, valid_fraction=0.6, seed=3)
        trie, hash_table = TrieRoaTable(), HashRoaTable()
        trie.extend(roas)
        hash_table.extend(roas)
        for prefix, origin in checks:
            assert trie.validate(prefix, origin) == hash_table.validate(prefix, origin)


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        roas = [
            Roa(p("10.0.0.0/16"), 65001, max_length=24),
            Roa(p("192.0.2.0/24"), 65002),
        ]
        path = tmp_path / "table.roa"
        dump_roa_file(str(path), roas)
        loaded = load_roa_file(str(path))
        assert set(loaded.all_roas()) == set(roas)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "table.roa"
        path.write_text("# header\n\n10.0.0.0/16 65001 20  # inline\n")
        loaded = load_roa_file(str(path))
        assert loaded.all_roas() == [Roa(p("10.0.0.0/16"), 65001, max_length=20)]

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "table.roa"
        path.write_text("10.0.0.0/16\n")
        with pytest.raises(ValueError):
            load_roa_file(str(path))

    def test_loads_into_given_table(self, tmp_path):
        path = tmp_path / "table.roa"
        path.write_text("10.0.0.0/16 65001\n")
        table = TrieRoaTable()
        assert load_roa_file(str(path), table) is table


class TestSyntheticRoas:
    def test_valid_fraction_approximate(self):
        checks = [(Prefix(0x0A000000 + (i << 8), 24), 65000) for i in range(2000)]
        roas = make_roas_for_prefixes(checks, valid_fraction=0.75, seed=1)
        table = HashRoaTable()
        table.extend(roas)
        outcomes = [table.validate(prefix, origin) for prefix, origin in checks]
        valid = sum(1 for o in outcomes if o == RouteOriginValidity.VALID)
        assert 0.70 < valid / len(checks) < 0.80

    def test_deterministic_for_seed(self):
        checks = [(p("10.0.0.0/16"), 65001), (p("11.0.0.0/16"), 65002)]
        assert make_roas_for_prefixes(checks, seed=9) == make_roas_for_prefixes(
            checks, seed=9
        )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_roas_for_prefixes([], valid_fraction=1.5)
