"""Unit tests for the two hosts' internal representations."""

import pytest

from repro.bgp.attributes import (
    PathAttribute,
    make_as_path,
    make_communities,
    make_geoloc,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
    make_originator_id,
)
from repro.bgp.aspath import AsPath
from repro.bgp.constants import AttrTypeCode, Origin
from repro.bird.eattrs import Eattr, EattrList
from repro.frr.attrs_intern import AttrPool, FrrAttrs


def sample_attrs():
    return [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence([65001, 65002])),
        make_next_hop(0x0A000001),
        make_med(50),
        make_local_pref(200),
        make_communities([0x1234_0001]),
        make_originator_id(0x01010101),
        make_geoloc(1.5, -2.5),  # unknown to the host: raw carry
    ]


class TestEattrList:
    def test_from_wire_find(self):
        eattrs = EattrList.from_wire(sample_attrs())
        assert eattrs.ea_find(AttrTypeCode.ORIGIN).data == bytes([Origin.IGP])
        assert AttrTypeCode.GEOLOC in eattrs

    def test_set_and_unset(self):
        eattrs = EattrList()
        eattrs.ea_set(99, 0xC0, b"\x01")
        assert eattrs.ea_find(99) == Eattr(99, 0xC0, b"\x01")
        assert eattrs.ea_unset(99)
        assert not eattrs.ea_unset(99)

    def test_copy_is_independent(self):
        eattrs = EattrList.from_wire(sample_attrs())
        clone = eattrs.copy()
        clone.ea_unset(AttrTypeCode.ORIGIN)
        assert AttrTypeCode.ORIGIN in eattrs

    def test_to_path_attributes_roundtrip(self):
        original = sorted(sample_attrs(), key=lambda a: a.type_code)
        eattrs = EattrList.from_wire(original)
        assert eattrs.to_path_attributes() == original

    def test_cache_key_stable(self):
        a = EattrList.from_wire(sample_attrs())
        b = EattrList.from_wire(sample_attrs())
        assert a.cache_key() == b.cache_key()
        b.ea_set(99, 0, b"")
        assert a.cache_key() != b.cache_key()

    def test_iteration_sorted_by_code(self):
        eattrs = EattrList.from_wire(sample_attrs())
        codes = [e.code for e in eattrs]
        assert codes == sorted(codes)


class TestFrrAttrs:
    def test_from_wire_parses_host_order(self):
        attrs = FrrAttrs.from_wire(sample_attrs())
        assert attrs.origin == Origin.IGP
        assert attrs.as_path == ((2, (65001, 65002)),)
        assert attrs.next_hop == 0x0A000001
        assert attrs.med == 50
        assert attrs.local_pref == 200
        assert attrs.communities == frozenset({0x1234_0001})
        assert attrs.originator_id == 0x01010101
        assert attrs.extra[0][0] == AttrTypeCode.GEOLOC

    def test_to_wire_roundtrip(self):
        original = sorted(sample_attrs(), key=lambda a: a.type_code)
        assert FrrAttrs.from_wire(original).to_wire() == original

    def test_attr_to_wire_single(self):
        attrs = FrrAttrs.from_wire(sample_attrs())
        med = attrs.attr_to_wire(AttrTypeCode.MULTI_EXIT_DISC)
        assert med is not None and med.as_u32() == 50
        assert attrs.attr_to_wire(222) is None

    def test_with_attr_wire_known_code(self):
        attrs = FrrAttrs.from_wire(sample_attrs())
        updated = attrs.with_attr_wire(
            AttrTypeCode.LOCAL_PREF, 0x40, (500).to_bytes(4, "big")
        )
        assert updated.local_pref == 500
        assert attrs.local_pref == 200  # original untouched

    def test_with_attr_wire_unknown_code_goes_to_extra(self):
        attrs = FrrAttrs().with_attr_wire(222, 0xC0, b"\xab")
        assert (222, 0xC0, b"\xab") in attrs.extra

    def test_with_attr_wire_replaces_extra(self):
        attrs = FrrAttrs().with_attr_wire(222, 0xC0, b"\xab")
        attrs = attrs.with_attr_wire(222, 0xC0, b"\xcd")
        assert len(attrs.extra) == 1
        assert attrs.extra[0][2] == b"\xcd"

    def test_without_attr(self):
        attrs = FrrAttrs.from_wire(sample_attrs())
        updated, removed = attrs.without_attr(AttrTypeCode.MULTI_EXIT_DISC)
        assert removed and updated.med is None
        again, removed2 = updated.without_attr(AttrTypeCode.MULTI_EXIT_DISC)
        assert not removed2 and again is updated

    def test_without_extra_attr(self):
        attrs = FrrAttrs().with_attr_wire(222, 0xC0, b"\xab")
        updated, removed = attrs.without_attr(222)
        assert removed and not updated.extra

    def test_has_attr(self):
        attrs = FrrAttrs.from_wire(sample_attrs())
        assert attrs.has_attr(AttrTypeCode.GEOLOC)
        assert not attrs.has_attr(250)

    def test_equality_and_hash(self):
        a = FrrAttrs.from_wire(sample_attrs())
        b = FrrAttrs.from_wire(sample_attrs())
        assert a == b and hash(a) == hash(b)


class TestAttrPool:
    def test_interning_dedups(self):
        pool = AttrPool()
        a = pool.intern(FrrAttrs.from_wire(sample_attrs()))
        b = pool.intern(FrrAttrs.from_wire(sample_attrs()))
        assert a is b
        assert pool.hits == 1 and pool.misses == 1
        assert len(pool) == 1

    def test_distinct_sets_kept_apart(self):
        pool = AttrPool()
        a = pool.intern(FrrAttrs(origin=0))
        b = pool.intern(FrrAttrs(origin=1))
        assert a is not b
        assert len(pool) == 2
