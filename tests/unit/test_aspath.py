"""Unit tests for repro.bgp.aspath."""

import pytest

from repro.bgp.aspath import AsPath, AsPathDecodeError, AsPathSegment
from repro.bgp.constants import AsPathSegmentType


class TestSegment:
    def test_sequence_counts_hops(self):
        seg = AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1, 2, 3])
        assert seg.path_length() == 3

    def test_set_counts_one(self):
        seg = AsPathSegment(AsPathSegmentType.AS_SET, [1, 2, 3])
        assert seg.path_length() == 1

    def test_rejects_out_of_range_asn(self):
        with pytest.raises(ValueError):
            AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1 << 32])


class TestPath:
    def test_from_sequence(self):
        path = AsPath.from_sequence([65001, 65002])
        assert list(path.asn_iter()) == [65001, 65002]

    def test_empty(self):
        assert AsPath().length() == 0
        assert AsPath.from_sequence([]).segments == ()

    def test_length_mixed(self):
        path = AsPath(
            [
                AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1, 2]),
                AsPathSegment(AsPathSegmentType.AS_SET, [3, 4, 5]),
            ]
        )
        assert path.length() == 3

    def test_contains(self):
        path = AsPath.from_sequence([65001, 65002])
        assert path.contains(65002)
        assert not path.contains(65003)

    def test_first_and_origin(self):
        path = AsPath.from_sequence([65001, 65002, 65003])
        assert path.first_asn() == 65001
        assert path.origin_asn() == 65003

    def test_origin_of_empty_is_zero(self):
        assert AsPath().origin_asn() == 0

    def test_origin_ambiguous_with_trailing_set(self):
        path = AsPath(
            [
                AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(AsPathSegmentType.AS_SET, [2, 3]),
            ]
        )
        assert path.origin_asn() == 0

    def test_prepend_extends_sequence(self):
        path = AsPath.from_sequence([65002]).prepend(65001)
        assert list(path.asn_iter()) == [65001, 65002]
        assert len(path.segments) == 1

    def test_prepend_count(self):
        path = AsPath.from_sequence([2]).prepend(1, count=3)
        assert list(path.asn_iter()) == [1, 1, 1, 2]

    def test_prepend_onto_empty(self):
        path = AsPath().prepend(65001)
        assert list(path.asn_iter()) == [65001]

    def test_prepend_before_set_creates_segment(self):
        path = AsPath([AsPathSegment(AsPathSegmentType.AS_SET, [5, 6])]).prepend(1)
        assert path.segments[0].kind == AsPathSegmentType.AS_SEQUENCE
        assert path.segments[1].kind == AsPathSegmentType.AS_SET

    def test_consecutive_pairs(self):
        path = AsPath.from_sequence([1, 2, 3])
        assert list(path.consecutive_pairs()) == [(1, 2), (2, 3)]

    def test_str_renders_sets_in_braces(self):
        path = AsPath(
            [
                AsPathSegment(AsPathSegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(AsPathSegmentType.AS_SET, [2, 3]),
            ]
        )
        assert str(path) == "1 {2 3}"


class TestWire:
    def test_roundtrip_four_octet(self):
        path = AsPath.from_sequence([65001, 4200000000, 1])
        assert AsPath.decode(path.encode()) == path

    def test_roundtrip_two_octet(self):
        path = AsPath.from_sequence([65001, 1])
        assert AsPath.decode(path.encode(four_octet=False), four_octet=False) == path

    def test_two_octet_rejects_large_asn(self):
        with pytest.raises(ValueError):
            AsPath.from_sequence([70000]).encode(four_octet=False)

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(AsPathDecodeError):
            AsPath.decode(b"\x02")

    def test_decode_rejects_truncated_body(self):
        with pytest.raises(AsPathDecodeError):
            AsPath.decode(b"\x02\x02\x00\x00\x00\x01")

    def test_decode_rejects_bad_segment_type(self):
        with pytest.raises(AsPathDecodeError):
            AsPath.decode(b"\x07\x01\x00\x00\x00\x01")

    def test_empty_roundtrip(self):
        assert AsPath.decode(AsPath().encode()) == AsPath()
