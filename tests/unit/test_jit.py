"""Unit tests for the eBPF→Python JIT: equivalence with the interpreter."""

import pytest

from repro.ebpf.assembler import assemble
from repro.ebpf.helpers import HelperTable
from repro.ebpf.jit import SCALAR_LIMIT, _promotable_slots
from repro.ebpf.memory import SandboxViolation, VmMemory
from repro.ebpf.vm import ExecutionError, VirtualMachine
from repro.xc import compile_source

CORPUS = [
    "mov r0, -1\nadd32 r0, 1\nexit",
    "lddw r0, 0x8000000000000000\narsh r0, 3\nexit",
    "mov r0, 7\nmov r1, 0\ndiv r0, r1\nexit",
    "mov r0, 7\nmov r1, 0\nmod r0, r1\nexit",
    "mov r0, 0x1234\nbe16 r0\nexit",
    "lddw r0, 0x1122334455667788\nle32 r0\nexit",
    "mov r1, -1\nmov r0, 0\njsgt r1, 5, t\nexit\nt:\nmov r0, 1\nexit",
    "mov r1, -1\nmov r0, 0\njgt r1, 5, t\nexit\nt:\nmov r0, 1\nexit",
    "mov r0, 0\ntop:\nadd r0, 3\njlt r0, 100, top\nexit",
    "mov r1, 5\nstxdw [r10-8], r1\nldxdw r0, [r10-8]\nexit",
    "stdw [r10-16], 123\nldxb r0, [r10-16]\nexit",
    "mov r0, 1\nmov r1, 64\nlsh r0, r1\nexit",
    "mov r0, 1\nlsh r0, 33\nrsh32 r0, 1\nexit",
]


def both(source, **regs):
    program = assemble(source)
    interp = VirtualMachine(program).run(**regs)
    jitted = VirtualMachine(program, jit=True).run(**regs)
    return interp, jitted


class TestEquivalence:
    @pytest.mark.parametrize("source", CORPUS)
    def test_corpus(self, source):
        interp, jitted = both(source)
        assert interp == jitted

    def test_arguments(self):
        interp, jitted = both("mov r0, r1\nmul r0, r2\nexit", r1=7, r2=9)
        assert interp == jitted == 63

    def test_xc_program_with_arrays(self):
        source = """
        u64 main(u64 x) {
            u8 buf[16];
            *(u32 *)(buf) = htonl(0xdeadbeef);
            *(u32 *)(buf + 4) = 0x01020304;
            u64 a = *(u8 *)(buf);
            u64 b = *(u16 *)(buf + 4);
            return a * 65536 + b + x;
        }
        """
        program = compile_source(source)
        results = set()
        for jit in (False, True):
            vm = VirtualMachine(program, jit=jit, trusted_layout=jit)
            results.add(vm.run(r1=5))
        assert len(results) == 1

    def test_helper_interplay(self):
        helpers = HelperTable()
        helpers.register(1, "double", lambda vm, a, *rest: (a * 2) & ((1 << 64) - 1))
        program = assemble("mov r1, 21\ncall double\nexit", helpers.name_to_id())
        interp = VirtualMachine(program, helpers).run()
        jitted = VirtualMachine(program, helpers, jit=True).run()
        assert interp == jitted == 42


class TestJitSpecifics:
    def test_budget_enforced(self):
        program = assemble("mov r0, 0\ntop:\nadd r0, 1\nja top\nexit")
        vm = VirtualMachine(program, jit=True, step_budget=100)
        with pytest.raises(ExecutionError, match="budget"):
            vm.run()

    def test_sandbox_still_enforced(self):
        program = assemble("mov r1, 0\nldxdw r0, [r1]\nexit")
        with pytest.raises(SandboxViolation):
            VirtualMachine(program, jit=True).run()

    def test_prepare_is_idempotent(self):
        vm = VirtualMachine(assemble("mov r0, 3\nexit"), jit=True)
        vm.prepare()
        first = vm._jit_run
        vm.prepare()
        assert vm._jit_run is first
        assert vm.run() == 3


class TestPromotion:
    def test_plain_stack_slots_promoted(self):
        program = assemble("mov r1, 5\nstxdw [r10-8], r1\nldxdw r0, [r10-8]\nexit")
        assert _promotable_slots(program) == {-8}

    def test_materialised_r10_disables_promotion(self):
        program = assemble(
            "mov r1, r10\nadd r1, -8\nmov r2, 5\nstxdw [r10-8], r2\nexit"
        )
        assert _promotable_slots(program) == set()

    def test_subword_stack_access_disables_promotion(self):
        program = assemble("stb [r10-8], 1\nmov r0, 0\nexit")
        assert _promotable_slots(program) == set()

    def test_trusted_layout_keeps_scalars(self):
        program = assemble(
            f"mov r1, r10\nadd r1, -{SCALAR_LIMIT + 8}\n"
            "mov r2, 5\nstxdw [r10-8], r2\nldxdw r0, [r10-8]\nexit"
        )
        assert _promotable_slots(program, trusted_layout=True) == {-8}

    def test_trusted_layout_excludes_block_region(self):
        program = assemble(
            f"mov r1, 5\nstxdw [r10-{SCALAR_LIMIT + 8}], r1\nmov r0, 0\nexit"
        )
        assert _promotable_slots(program, trusted_layout=True) == set()

    def test_semantics_identical_with_aliasing_when_untrusted(self):
        # A program that writes a slot via a materialised pointer: the
        # conservative JIT must see the pointer write.
        source = """
            mov r1, r10
            add r1, -8
            mov r2, 77
            stxdw [r1], r2
            ldxdw r0, [r10-8]
            exit
        """
        program = assemble(source)
        interp = VirtualMachine(program).run()
        jitted = VirtualMachine(program, jit=True).run()
        assert interp == jitted == 77
