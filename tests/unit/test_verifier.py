"""Unit tests for the static verifier."""

import pytest

from repro.ebpf.assembler import assemble
from repro.ebpf.isa import Instruction
from repro.ebpf.verifier import VerifierConfig, VerifierError, verify


def check(source, **config):
    verify(assemble(source), VerifierConfig(**config))


class TestAccepts:
    def test_trivial(self):
        check("mov r0, 0\nexit")

    def test_branches(self):
        check(
            """
            mov r1, 5
            jeq r1, 5, yes
            mov r0, 0
            exit
        yes:
            mov r0, 1
            exit
            """
        )

    def test_stack_access(self):
        check("mov r1, 7\nstxdw [r10-8], r1\nldxdw r0, [r10-8]\nexit")

    def test_loop_allowed_when_configured(self):
        source = """
            mov r0, 0
        top:
            add r0, 1
            jlt r0, 5, top
            exit
        """
        check(source, allow_loops=True)

    def test_helper_in_allowed_set(self):
        program = assemble("call 7\nexit")
        verify(program, VerifierConfig(allowed_helpers={7}))


class TestRejects:
    def test_empty_program(self):
        with pytest.raises(VerifierError):
            verify([])

    def test_too_long(self):
        program = assemble("mov r0, 0\n" * 10 + "exit")
        with pytest.raises(VerifierError):
            verify(program, VerifierConfig(max_instructions=5))

    def test_no_exit(self):
        # Falling off the end is caught as control flow leaving the program.
        with pytest.raises(VerifierError):
            verify(assemble("mov r0, 0"))

    def test_jump_out_of_range(self):
        with pytest.raises(VerifierError):
            verify([Instruction(0x05, 0, 0, 100, 0)])  # ja +100

    def test_loop_rejected_by_default(self):
        source = """
            mov r0, 0
        top:
            add r0, 1
            jlt r0, 5, top
            exit
        """
        with pytest.raises(VerifierError, match="back-edge"):
            check(source)

    def test_write_to_r10(self):
        with pytest.raises(VerifierError, match="r10"):
            verify(assemble("mov r10, 5\nexit"))

    def test_division_by_zero_constant(self):
        with pytest.raises(VerifierError, match="zero"):
            verify(assemble("mov r0, 8\ndiv r0, 0\nexit"))

    def test_modulo_by_zero_constant(self):
        with pytest.raises(VerifierError, match="zero"):
            verify(assemble("mov r0, 8\nmod r0, 0\nexit"))

    def test_helper_not_in_allowed_set(self):
        program = assemble("call 7\nexit")
        with pytest.raises(VerifierError, match="manifest"):
            verify(program, VerifierConfig(allowed_helpers={3}))

    def test_jump_into_lddw_second_slot(self):
        program = assemble("lddw r1, 0x1122334455667788\nmov r0, 0\nexit")
        # Craft a jump landing on the lddw continuation slot.
        bad = [Instruction(0x05, 0, 0, 0, 0)] + program  # ja +0 -> slot 1
        bad[0] = Instruction(0x05, 0, 0, 1, 0)  # ja into slot 2 (lddw half)
        with pytest.raises(VerifierError):
            verify(bad)

    def test_lddw_missing_second_slot(self):
        program = assemble("lddw r1, 0x1122334455667788\nexit")
        with pytest.raises(VerifierError):
            verify(program[:1] + program[2:])  # drop the second slot

    def test_read_before_initialisation(self):
        with pytest.raises(VerifierError, match="r6"):
            verify(assemble("mov r0, r6\nexit"))

    def test_read_initialised_on_one_path_only(self):
        source = """
            mov r1, 1
            jeq r1, 0, skip
            mov r6, 5
        skip:
            mov r0, r6
            exit
        """
        with pytest.raises(VerifierError, match="r6"):
            verify(assemble(source))

    def test_bad_byteswap_width(self):
        program = assemble("be16 r1\nexit")
        bad = [program[0]._replace(imm=24), program[1]]
        with pytest.raises(VerifierError):
            verify(bad)

    def test_unknown_opcode(self):
        with pytest.raises(VerifierError):
            verify([Instruction(0xFF, 0, 0, 0, 0), Instruction(0x95, 0, 0, 0, 0)])
