"""Unit tests for the FIB and data-plane tracing."""

import pytest

from repro.bgp import Prefix
from repro.bgp.fib import Fib, FibEntry
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.sim import Network


class TestFib:
    def test_longest_match_wins(self):
        fib = Fib()
        fib.install(FibEntry(Prefix.parse("10.0.0.0/8"), 1))
        fib.install(FibEntry(Prefix.parse("10.1.0.0/16"), 2))
        assert fib.lookup(parse_ipv4("10.1.2.3")).next_hop == 2
        assert fib.lookup(parse_ipv4("10.2.2.3")).next_hop == 1

    def test_miss_returns_none(self):
        assert Fib().lookup(parse_ipv4("10.0.0.1")) is None

    def test_default_route(self):
        fib = Fib()
        fib.install(FibEntry(Prefix.parse("0.0.0.0/0"), 9))
        assert fib.lookup(parse_ipv4("8.8.8.8")).next_hop == 9

    def test_remove(self):
        fib = Fib()
        entry = FibEntry(Prefix.parse("10.0.0.0/8"), 1)
        fib.install(entry)
        assert fib.remove(entry.prefix) == entry
        assert fib.remove(entry.prefix) is None
        assert len(fib) == 0

    def test_from_loc_rib_marks_local(self):
        daemon = BirdDaemon(asn=65001, router_id="1.1.1.1")
        daemon.originate(Prefix.parse("192.0.2.0/24"))
        fib = Fib.from_loc_rib(daemon.loc_rib)
        entry = fib.lookup(parse_ipv4("192.0.2.5"))
        assert entry is not None and entry.local


class TestTrace:
    def _chain(self):
        """a -- b -- c, eBGP everywhere, c originates."""
        network = Network()
        a = BirdDaemon(asn=65001, router_id="1.1.1.1", local_address="10.0.0.1")
        b = BirdDaemon(asn=65002, router_id="2.2.2.2", local_address="10.0.1.1")
        c = BirdDaemon(asn=65003, router_id="3.3.3.3", local_address="10.0.2.1")
        network.add_router("a", a)
        network.add_router("b", b)
        network.add_router("c", c)
        network.connect("a", "10.0.0.1", "b", "10.0.1.1")
        network.connect("b", "10.0.1.2", "c", "10.0.2.1")
        network.establish_all()
        c.originate(Prefix.parse("192.0.2.0/24"))
        network.run()
        return network

    def test_delivery_along_bgp_path(self):
        network = self._chain()
        outcome, hops = network.trace("a", "192.0.2.7")
        assert outcome == "delivered"
        assert hops == ["a", "b", "c"]

    def test_origin_delivers_locally(self):
        network = self._chain()
        outcome, hops = network.trace("c", "192.0.2.7")
        assert outcome == "delivered"
        assert hops == ["c"]

    def test_unknown_destination_unreachable(self):
        network = self._chain()
        outcome, _ = network.trace("a", "198.51.100.1")
        assert outcome == "unreachable"

    def test_withdrawal_breaks_forwarding(self):
        network = self._chain()
        network.router("c").withdraw_local(Prefix.parse("192.0.2.0/24"))
        network.run()
        outcome, _ = network.trace("a", "192.0.2.7")
        assert outcome == "unreachable"
