"""Unit tests for mergeable registry snapshots (repro.telemetry.aggregate).

The merge must be algebraically well-behaved — associative and
commutative with the empty snapshot as identity — because the sharded
replay merges worker snapshots in whatever order the pool returns them,
and ``xbgp stats --merge`` folds files in argv order.  These laws are
pinned on randomized registries, alongside the refusal cases (bucket
boundary mismatches, label-set collisions, counter regressions).
"""

import random

import pytest

from repro.telemetry.aggregate import (
    SNAPSHOT_VERSION,
    merge_into,
    merge_snapshots,
    registry_from_snapshot,
    snapshot_registry,
)
from repro.telemetry.metrics import MetricsRegistry, render_prometheus


def random_registry(seed: int) -> MetricsRegistry:
    """A registry with random counters/gauges/histograms, from ``seed``."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for index in range(rng.randint(1, 4)):
        counter = registry.counter(
            f"ctr_{index}", "random counter", kind=str(rng.randint(0, 2))
        )
        counter.inc(rng.randint(0, 1000))
    for index in range(rng.randint(1, 3)):
        registry.gauge(f"gau_{index}", "random gauge").set(
            rng.uniform(-50.0, 50.0)
        )
    histogram = registry.histogram(
        "hist_lat", "random latencies", buckets=[0.001, 0.01, 0.1, 1.0]
    )
    for _ in range(rng.randint(0, 40)):
        histogram.observe(rng.uniform(0.0, 2.0))
    return registry


def canonical(snapshot):
    """Order-insensitive comparable form of a snapshot.

    Floats are rounded: merge order legitimately changes summation
    order, and IEEE addition is not associative in the last ulps.
    """

    def norm(value):
        return round(value, 6) if isinstance(value, float) else value

    out = {}
    for name, family in snapshot["families"].items():
        series = {
            tuple(row["labels"]): {
                k: [norm(x) for x in v] if isinstance(v, list) else norm(v)
                for k, v in row.items()
                if k != "labels"
            }
            for row in family["series"]
        }
        out[name] = (
            family["kind"],
            tuple(family["label_names"]),
            tuple(family["buckets"]) if family["buckets"] else None,
            series,
        )
    return out


class TestRoundTrip:
    def test_snapshot_restore_is_lossless(self):
        registry = random_registry(7)
        snapshot = snapshot_registry(registry)
        assert snapshot["snapshot_version"] == SNAPSHOT_VERSION
        restored = registry_from_snapshot(snapshot)
        assert canonical(snapshot_registry(restored)) == canonical(snapshot)
        # The restored registry renders identically too.
        assert render_prometheus(restored) == render_prometheus(registry)

    def test_snapshot_survives_json(self):
        import json

        snapshot = snapshot_registry(random_registry(3))
        rehydrated = json.loads(json.dumps(snapshot))
        assert canonical(rehydrated) == canonical(snapshot)

    def test_function_gauges_collapse_to_value(self):
        registry = MetricsRegistry()
        registry.gauge("live", "function-backed").set_function(lambda: 42.5)
        restored = registry_from_snapshot(snapshot_registry(registry))
        assert restored.gauge("live", "function-backed").get() == 42.5


class TestMergeLaws:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_commutative(self, seed):
        a = snapshot_registry(random_registry(seed))
        b = snapshot_registry(random_registry(seed + 100))
        assert canonical(merge_snapshots([a, b])) == canonical(
            merge_snapshots([b, a])
        )

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_associative(self, seed):
        a = snapshot_registry(random_registry(seed))
        b = snapshot_registry(random_registry(seed + 100))
        c = snapshot_registry(random_registry(seed + 200))
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert canonical(left) == canonical(right)

    @pytest.mark.parametrize("seed", [21, 22])
    def test_empty_snapshot_is_identity(self, seed):
        empty = snapshot_registry(MetricsRegistry())
        a = snapshot_registry(random_registry(seed))
        assert canonical(merge_snapshots([a, empty])) == canonical(a)
        assert canonical(merge_snapshots([empty, a])) == canonical(a)

    def test_counters_add(self):
        registry = MetricsRegistry()
        registry.counter("c", "").inc(3)
        snapshot = snapshot_registry(registry)
        merged = registry_from_snapshot(merge_snapshots([snapshot, snapshot]))
        assert merged.counter("c", "").value == 6

    def test_histograms_merge_bucket_wise(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "", buckets=[1.0, 10.0])
        histogram.observe(0.5)
        histogram.observe(5.0)
        snapshot = snapshot_registry(registry)
        merged = registry_from_snapshot(merge_snapshots([snapshot, snapshot]))
        out = merged.histogram("h", "", buckets=[1.0, 10.0])
        assert out.counts == [2, 2, 0]
        assert out.count == 4
        assert out.sum == pytest.approx(11.0)

    def test_negative_gauges_merge_by_max(self):
        # A deliberately-zero gauge must not be mistaken for "fresh"
        # when a negative value merges into it.
        registry = MetricsRegistry()
        registry.gauge("g", "").set(0.0)
        incoming = MetricsRegistry()
        incoming.gauge("g", "").set(-3.0)
        merge_into(registry, snapshot_registry(incoming))
        assert registry.gauge("g", "").get() == 0.0

    def test_gauge_policies(self):
        low, high = MetricsRegistry(), MetricsRegistry()
        low.gauge("g", "").set(1.0)
        high.gauge("g", "").set(9.0)
        snaps = [snapshot_registry(low), snapshot_registry(high)]
        for policy, expected in (
            ("max", 9.0),
            ("min", 1.0),
            ("sum", 10.0),
            ("last", 9.0),
        ):
            merged = registry_from_snapshot(
                merge_snapshots(snaps, gauge_policy={"g": policy})
            )
            assert merged.gauge("g", "").get() == expected, policy


class TestShardLabels:
    def test_origin_stamp(self):
        registry = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("c", "", point="imp").inc(5)
        merge_into(registry, snapshot_registry(worker), labels={"shard": "0"})
        merge_into(registry, snapshot_registry(worker), labels={"shard": "1"})
        assert registry.counter("c", "", point="imp", shard="0").value == 5
        assert registry.counter("c", "", point="imp", shard="1").value == 5
        text = render_prometheus(registry)
        assert 'shard="0"' in text and 'shard="1"' in text

    def test_extra_label_collision_rejected(self):
        worker = MetricsRegistry()
        worker.counter("c", "", shard="9").inc(1)
        with pytest.raises(ValueError, match="collide"):
            merge_into(
                MetricsRegistry(),
                snapshot_registry(worker),
                labels={"shard": "0"},
            )


class TestRefusals:
    def test_bucket_boundary_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", "", buckets=[1.0, 2.0]).observe(0.5)
        b.histogram("h", "", buckets=[1.0, 4.0]).observe(0.5)
        with pytest.raises(ValueError, match="boundaries differ"):
            merge_snapshots([snapshot_registry(a), snapshot_registry(b)])

    def test_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m", "").inc()
        b.gauge("m", "").set(1.0)
        with pytest.raises(ValueError):
            merge_snapshots([snapshot_registry(a), snapshot_registry(b)])

    def test_label_name_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m", "", peer="x").inc()
        b.counter("m", "", point="x").inc()
        with pytest.raises(ValueError, match="label"):
            merge_snapshots([snapshot_registry(a), snapshot_registry(b)])

    def test_negative_counter_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", "").inc(2)
        snapshot = snapshot_registry(registry)
        snapshot["families"]["c"]["series"][0]["value"] = -1
        with pytest.raises(ValueError, match="negative"):
            merge_into(MetricsRegistry(), snapshot)

    def test_version_mismatch_rejected(self):
        snapshot = snapshot_registry(MetricsRegistry())
        snapshot["snapshot_version"] = 999
        with pytest.raises(ValueError, match="snapshot_version"):
            merge_into(MetricsRegistry(), snapshot)

    def test_not_a_snapshot_rejected(self):
        with pytest.raises(ValueError, match="families"):
            merge_into(MetricsRegistry(), {"metrics": {}})
