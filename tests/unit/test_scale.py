"""Unit tests for the scale package: partitioning and collect modes.

Parity of the batched/sharded pipelines against sequential replay
lives in tests/integration/test_batch_parity.py; these tests pin the
parts that are cheap to check in isolation — the partition map's
bisect lookup against its own trie, and the summary collect mode
against full collection.
"""

import random

import pytest

from repro.bgp.prefix import Prefix
from repro.scale import PartitionMap, ShardedReplay
from repro.workload import RibGenerator


class TestPartitionMap:
    def _routes(self, n=400, seed=11):
        return RibGenerator(n_routes=n, seed=seed).generate()

    def test_bisect_matches_trie_lookup(self):
        """shard_of's sorted-cut bisect must agree with longest-prefix
        match over the map's own CIDR blocks — including on prefixes
        never seen at build time."""
        routes = self._routes()
        pmap = PartitionMap((spec.prefix for spec in routes), 4)
        rng = random.Random(3)
        probes = [spec.prefix for spec in routes]
        probes += [
            Prefix(rng.randrange(0, 1 << 32) & ~0xFF, 24) for _ in range(500)
        ]
        for prefix in probes:
            hit = pmap._trie.lookup_address(prefix.network)
            assert hit is not None
            assert pmap.shard_of(prefix) == hit[1]

    def test_blocks_cover_space_disjointly(self):
        routes = self._routes()
        pmap = PartitionMap((spec.prefix for spec in routes), 3)
        covered = sum(1 << (32 - block.length) for block, _ in pmap.blocks)
        assert covered == 1 << 32

    def test_balanced_buckets(self):
        routes = self._routes(n=1000)
        pmap = PartitionMap((spec.prefix for spec in routes), 4)
        counts = [0] * pmap.shards
        for spec in routes:
            counts[pmap.shard_of(spec.prefix)] += 1
        assert min(counts) > 0.5 * (len(routes) / pmap.shards)

    def test_empty_workload_degenerates_to_one_shard(self):
        pmap = PartitionMap((), 4)
        assert pmap.shards == 1
        assert pmap.shard_of(Prefix.parse("10.0.0.0/8")) == 0


class TestCollectModes:
    def _run(self, collect):
        routes = RibGenerator(n_routes=150, seed=5).generate()
        return ShardedReplay(
            "frr",
            routes,
            feature="plain",
            mode="native",
            tier="native",
            shards=2,
            batch=16,
            backend="inline",
            collect=collect,
        ).run()

    def test_summary_counts_match_full_sets(self):
        full = self._run("full")
        summary = self._run("summary")
        assert full.snapshot is not None and len(full.snapshot) == 150
        assert summary.snapshot is None
        assert summary.prefixes is None and summary.withdrawn is None
        assert summary.prefix_count == len(full.prefixes) == 150
        assert summary.withdrawn_count == len(full.withdrawn)
        assert summary.stats == full.stats
        assert [r["routes"] for r in summary.per_shard] == [
            r["routes"] for r in full.per_shard
        ]
        assert all(r["loc_rib_count"] > 0 for r in summary.per_shard)

    def test_unknown_collect_mode_rejected(self):
        with pytest.raises(ValueError):
            self._run("everything")
