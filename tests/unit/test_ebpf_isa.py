"""Unit tests for instruction encoding/decoding and the assembler."""

import pytest

from repro.ebpf.assembler import AssemblerError, assemble
from repro.ebpf.disassembler import disassemble
from repro.ebpf.isa import (
    Instruction,
    InstructionError,
    OP_EXIT,
    OP_LDDW,
    decode_program,
    encode_program,
)


class TestInstructionCodec:
    def test_eight_bytes_each(self):
        insn = Instruction(0xB7, 1, 0, 0, 42)  # mov r1, 42
        assert len(insn.encode()) == 8

    def test_roundtrip(self):
        insn = Instruction(0x6B, 3, 7, -16, -1)
        assert Instruction.decode(insn.encode()) == insn

    def test_register_field_bounds(self):
        with pytest.raises(InstructionError):
            Instruction(0xB7, 16, 0, 0, 0).encode()

    def test_program_roundtrip(self):
        program = assemble("mov r0, 7\nexit")
        assert decode_program(encode_program(program)) == program

    def test_decode_rejects_ragged_size(self):
        with pytest.raises(InstructionError):
            decode_program(b"\x00" * 9)


class TestAssembler:
    def test_mov_and_exit(self):
        program = assemble("mov r0, 5\nexit")
        assert program[0].opcode == 0xB7 and program[0].imm == 5
        assert program[1].opcode == OP_EXIT

    def test_register_source(self):
        program = assemble("add r1, r2\nexit")
        assert program[0].opcode == 0x0F
        assert (program[0].dst, program[0].src) == (1, 2)

    def test_alu32_suffix(self):
        program = assemble("add32 r1, 1\nexit")
        assert program[0].opcode == 0x04

    def test_lddw_two_slots(self):
        program = assemble("lddw r1, 0x1122334455667788\nexit")
        assert program[0].opcode == OP_LDDW
        assert len(program) == 3

    def test_loads_and_stores(self):
        program = assemble(
            "ldxdw r1, [r10-8]\nstxw [r10-16], r2\nstb [r1+3], 7\nexit"
        )
        assert program[0].offset == -8
        assert program[1].offset == -16
        assert program[2].imm == 7

    def test_labels_forward_and_back(self):
        program = assemble(
            """
            mov r0, 0
        top:
            add r0, 1
            jlt r0, 3, top
            ja done
            mov r0, 99
        done:
            exit
            """
        )
        # jlt back to 'top' must have a negative offset.
        assert any(insn.offset < 0 for insn in program)

    def test_call_by_name(self):
        program = assemble("call my_helper\nexit", {"my_helper": 77})
        assert program[0].imm == 77

    def test_call_by_number(self):
        assert assemble("call 12\nexit")[0].imm == 12

    def test_byteswaps(self):
        program = assemble("be16 r1\nle64 r2\nexit")
        assert program[0].imm == 16
        assert program[1].imm == 64

    def test_comments_ignored(self):
        program = assemble("mov r0, 1 ; trailing\n# full line\nexit")
        assert len(program) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1\nexit")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("mov r11, 1\nexit")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nmov r0, 1\nx:\nexit")

    def test_offset_out_of_s16(self):
        with pytest.raises(AssemblerError):
            assemble("ldxdw r1, [r2+40000]\nexit")


class TestDisassembler:
    def test_text_roundtrip(self):
        source = """
            mov r6, 10
            lddw r1, 0xdeadbeefcafebabe
            ldxw r2, [r6+4]
            stxdw [r10-8], r1
            jeq r2, 5, +2
            add r2, r6
            neg r2
            be32 r2
            call 3
            exit
        """
        program = assemble(source)
        text = disassemble(program)
        assert assemble(text) == program

    def test_helper_names_rendered(self):
        program = assemble("call 9\nexit")
        assert "call trace" in disassemble(program, {9: "trace"})
