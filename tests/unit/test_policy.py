"""Unit tests for the native filter framework."""

from repro.bgp.attributes import (
    make_as_path,
    make_communities,
    make_next_hop,
    make_origin,
)
from repro.bgp.aspath import AsPath
from repro.bgp.communities import community
from repro.bgp.constants import AttrTypeCode, Origin, WellKnownCommunity
from repro.bgp.peer import Neighbor
from repro.bgp.policy import (
    AsPathLoopFilter,
    CommunityMatchFilter,
    CommunityTagFilter,
    FilterAction,
    FilterChain,
    FilterResult,
    NoExportFilter,
    PrefixListFilter,
)
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bird.eattrs import EattrList
from repro.bird.rib import BirdRoute


def ebgp_neighbor():
    return Neighbor.build("10.0.0.2", 65002, "10.0.0.1", 65001)


def ibgp_neighbor():
    return Neighbor.build("10.0.0.3", 65001, "10.0.0.1", 65001)


def route(prefix="10.0.0.0/8", as_path=(65002,), communities=None):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence(as_path)),
        make_next_hop(parse_ipv4("10.0.0.2")),
    ]
    if communities:
        attrs.append(make_communities(communities))
    return BirdRoute(Prefix.parse(prefix), ebgp_neighbor(), EattrList.from_wire(attrs))


class TestChain:
    def test_empty_chain_accepts(self):
        assert FilterChain().evaluate(route(), ebgp_neighbor()) is not None

    def test_reject_short_circuits(self):
        calls = []

        def rejecting(r, n):
            calls.append("first")
            return FilterResult.reject()

        def never(r, n):
            calls.append("second")
            return FilterResult.proceed(r)

        chain = FilterChain([rejecting, never])
        assert chain.evaluate(route(), ebgp_neighbor()) is None
        assert calls == ["first"]

    def test_accept_short_circuits(self):
        chain = FilterChain(
            [lambda r, n: FilterResult.accept(r), lambda r, n: FilterResult.reject()]
        )
        assert chain.evaluate(route(), ebgp_neighbor()) is not None

    def test_continue_passes_rewritten_route(self):
        tag = CommunityTagFilter(community(65001, 42))
        seen = []

        def check(r, n):
            seen.append(r.attribute(AttrTypeCode.COMMUNITIES))
            return FilterResult.proceed(r)

        chain = FilterChain([tag, check])
        result = chain.evaluate(route(), ebgp_neighbor())
        assert community(65001, 42) in result.attribute(AttrTypeCode.COMMUNITIES).as_communities()
        assert seen[0] is not None


class TestFilters:
    def test_prefix_list_deny(self):
        deny = PrefixListFilter([Prefix.parse("10.0.0.0/8")])
        assert deny(route("10.1.0.0/16"), ebgp_neighbor()).action == FilterAction.REJECT
        assert deny(route("11.0.0.0/8"), ebgp_neighbor()).action == FilterAction.CONTINUE

    def test_prefix_list_permit_only(self):
        permit = PrefixListFilter([Prefix.parse("10.0.0.0/8")], permit=True)
        assert permit(route("10.1.0.0/16"), ebgp_neighbor()).action == FilterAction.CONTINUE
        assert permit(route("11.0.0.0/8"), ebgp_neighbor()).action == FilterAction.REJECT

    def test_community_tag_preserves_existing(self):
        tag = CommunityTagFilter(community(65001, 2))
        result = tag(route(communities=[community(65001, 1)]), ebgp_neighbor())
        values = result.route.attribute(AttrTypeCode.COMMUNITIES).as_communities()
        assert {community(65001, 1), community(65001, 2)} <= values

    def test_community_match_rejects(self):
        match = CommunityMatchFilter(community(65001, 7))
        tagged = route(communities=[community(65001, 7)])
        assert match(tagged, ebgp_neighbor()).action == FilterAction.REJECT
        assert match(route(), ebgp_neighbor()).action == FilterAction.CONTINUE

    def test_as_path_loop(self):
        loop = AsPathLoopFilter(65001)
        looped = route(as_path=(65002, 65001))
        assert loop(looped, ebgp_neighbor()).action == FilterAction.REJECT
        assert loop(route(), ebgp_neighbor()).action == FilterAction.CONTINUE

    def test_no_export_blocked_on_ebgp(self):
        filt = NoExportFilter()
        tagged = route(communities=[int(WellKnownCommunity.NO_EXPORT)])
        assert filt(tagged, ebgp_neighbor()).action == FilterAction.REJECT
        assert filt(tagged, ibgp_neighbor()).action == FilterAction.CONTINUE

    def test_no_advertise_blocked_everywhere(self):
        filt = NoExportFilter()
        tagged = route(communities=[int(WellKnownCommunity.NO_ADVERTISE)])
        assert filt(tagged, ibgp_neighbor()).action == FilterAction.REJECT
