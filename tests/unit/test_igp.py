"""Unit tests for the IGP substrate (topology + SPF)."""

import pytest

from repro.bgp.prefix import parse_ipv4
from repro.igp import IgpTopology, IgpView, Spf, UNREACHABLE


def triangle():
    topology = IgpTopology()
    topology.add_node("a", "10.0.0.1")
    topology.add_node("b", "10.0.0.2")
    topology.add_node("c", "10.0.0.3")
    topology.add_link("a", "b", 1)
    topology.add_link("b", "c", 1)
    topology.add_link("a", "c", 5)
    return topology


class TestTopology:
    def test_duplicate_node_rejected(self):
        topology = IgpTopology()
        topology.add_node("a", "10.0.0.1")
        with pytest.raises(ValueError):
            topology.add_node("a", "10.0.0.2")

    def test_duplicate_loopback_rejected(self):
        topology = IgpTopology()
        topology.add_node("a", "10.0.0.1")
        with pytest.raises(ValueError):
            topology.add_node("b", "10.0.0.1")

    def test_link_needs_known_nodes(self):
        topology = IgpTopology()
        topology.add_node("a", "10.0.0.1")
        with pytest.raises(KeyError):
            topology.add_link("a", "zz", 1)

    def test_link_cost_positive(self):
        topology = triangle()
        with pytest.raises(ValueError):
            topology.add_link("a", "b", 0)

    def test_asymmetric_costs(self):
        topology = IgpTopology()
        topology.add_node("a", "10.0.0.1")
        topology.add_node("b", "10.0.0.2")
        topology.add_link("a", "b", 1, cost_back=9)
        assert topology.neighbors("a")["b"] == 1
        assert topology.neighbors("b")["a"] == 9

    def test_node_by_address(self):
        topology = triangle()
        assert topology.node_by_address(parse_ipv4("10.0.0.2")) == "b"
        assert topology.node_by_address(123) is None

    def test_edges_deduplicated(self):
        assert len(list(triangle().edges())) == 3


class TestSpf:
    def test_shortest_path_chosen(self):
        spf = Spf(triangle())
        assert spf.distance("a", "c") == 2  # a-b-c beats a-c direct (5)

    def test_self_distance_zero(self):
        assert Spf(triangle()).distance("a", "a") == 0

    def test_unreachable(self):
        topology = triangle()
        topology.add_node("island", "10.0.0.9")
        assert Spf(topology).distance("a", "island") == UNREACHABLE

    def test_cache_invalidation(self):
        topology = triangle()
        spf = Spf(topology)
        assert spf.distance("a", "c") == 2
        topology.remove_link("a", "b")
        spf.invalidate()
        assert spf.distance("a", "c") == 5

    def test_stale_without_invalidation(self):
        # Documented behavior: the cache holds until invalidated.
        topology = triangle()
        spf = Spf(topology)
        assert spf.distance("a", "c") == 2
        topology.remove_link("a", "b")
        assert spf.distance("a", "c") == 2  # still cached
        assert spf.generation == 0
        spf.invalidate()
        assert spf.generation == 1

    def test_first_hop_recorded(self):
        spf = Spf(triangle())
        tree = spf.tree("a")
        assert tree["c"] == (2, "b")


class TestIgpView:
    def test_metric_to_loopback(self):
        topology = triangle()
        view = IgpView(Spf(topology), topology, "a")
        assert view.metric_to(parse_ipv4("10.0.0.3")) == 2
        assert view.reachable(parse_ipv4("10.0.0.3"))

    def test_unknown_address_unreachable(self):
        topology = triangle()
        view = IgpView(Spf(topology), topology, "a")
        assert view.metric_to(parse_ipv4("99.99.99.99")) == UNREACHABLE
        assert not view.reachable(parse_ipv4("99.99.99.99"))

    def test_unknown_node_rejected(self):
        topology = triangle()
        with pytest.raises(KeyError):
            IgpView(Spf(topology), topology, "nope")
