"""Unit tests for the Fig. 4 experiment driver itself."""

import pytest

from repro.bgp.roa import make_roas_for_prefixes
from repro.eval import fig4
from repro.workload import RibGenerator, origins_of


@pytest.fixture(scope="module")
def tiny_routes():
    return RibGenerator(n_routes=60, seed=55).generate()


class TestRunCell:
    def test_produces_paired_samples(self, tiny_routes):
        result = fig4.run_cell(
            "bird", "route_reflection", tiny_routes, None, runs=2, engine="pyext"
        )
        assert len(result.native_seconds) == 2
        assert len(result.extension_seconds) == 2
        assert all(value > 0 for value in result.native_seconds)

    def test_impacts_are_percentages(self, tiny_routes):
        result = fig4.run_cell(
            "bird", "route_reflection", tiny_routes, None, runs=2, engine="pyext"
        )
        stats = result.stats()
        assert set(stats) == {"min", "p25", "median", "p75", "max"}
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_origin_validation_cell(self, tiny_routes):
        roas = make_roas_for_prefixes(origins_of(tiny_routes), 0.75, seed=55)
        result = fig4.run_cell(
            "frr", "origin_validation", tiny_routes, roas, runs=1, engine="jit"
        )
        assert result.engine == "jit"
        assert len(result.extension_seconds) == 1

    def test_render_includes_every_cell(self, tiny_routes):
        results = [
            fig4.run_cell("bird", "route_reflection", tiny_routes, None, 1, "pyext"),
            fig4.run_cell("frr", "route_reflection", tiny_routes, None, 1, "pyext"),
        ]
        text = fig4.render_table(results, 60, 1)
        assert text.count("route_reflection") == 2
        assert "bird" in text and "frr" in text


class TestBoxplotEdgeCases:
    def test_single_sample(self):
        stats = fig4.boxplot_stats([5.0])
        assert stats["min"] == stats["median"] == stats["max"] == 5.0

    def test_interpolated_quartiles(self):
        stats = fig4.boxplot_stats([0.0, 10.0])
        assert stats["p25"] == 2.5
        assert stats["p75"] == 7.5
