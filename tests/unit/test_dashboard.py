"""Unit tests for the ``xbgp top`` renderer (repro.telemetry.dashboard).

The renderer is a pure function of (samples, alerts, health); these
tests pin the frame sections — header, shard progress bars, counter
sparklines, histogram summaries, the alert table — without a terminal.
"""

from repro.telemetry.aggregate import snapshot_registry
from repro.telemetry.dashboard import render_dashboard, sparkline
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import make_sample


def _sample(ts, seq=1, updates=0.0, shards=None, latencies=()):
    registry = MetricsRegistry()
    if updates:
        registry.counter("xbgp_updates", "updates").inc(updates)
    for shard, (done, total) in (shards or {}).items():
        registry.gauge(
            "xbgp_replay_progress_routes", "done", shard=shard
        ).set(done)
        registry.gauge(
            "xbgp_replay_shard_routes", "total", shard=shard
        ).set(total)
    if shards:
        done_sum = sum(d for d, _ in shards.values())
        total_sum = sum(t for _, t in shards.values())
        registry.gauge("xbgp_replay_done_ratio", "ratio").set(
            done_sum / total_sum if total_sum else 0.0
        )
    if latencies:
        histogram = registry.histogram("xbgp_run_seconds", "latency")
        for value in latencies:
            histogram.observe(value)
    return make_sample(snapshot_registry(registry), ts, seq)


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([1, 2, 3], width=10)) == 10
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_empty_is_blank(self):
        assert sparkline([], width=5) == "     "

    def test_scales_to_max(self):
        line = sparkline([0, 10], width=2)
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_all_zero_uses_floor_tick(self):
        assert set(sparkline([0, 0, 0], width=3)) == {"▁"}


class TestRenderDashboard:
    def test_empty_series(self):
        frame = render_dashboard([])
        assert "no samples yet" in frame

    def test_header_and_source(self):
        frame = render_dashboard(
            [_sample(10.0, seq=1), _sample(13.0, seq=2)], source="ts.jsonl"
        )
        assert "xbgp top · ts.jsonl" in frame
        assert "samples 2" in frame
        assert "span 3.0s" in frame

    def test_shard_progress_bars(self):
        frame = render_dashboard(
            [_sample(0.0, shards={"0": (50, 100), "1": (100, 100)})]
        )
        assert "replay progress" in frame
        assert "shard   0" in frame
        assert "50/100 (50%)" in frame
        assert "100/100 (100%)" in frame
        assert "total 75.0%" in frame

    def test_counter_sparklines_and_totals(self):
        samples = [
            _sample(0.0, seq=1, updates=10),
            _sample(1.0, seq=2, updates=30),
        ]
        frame = render_dashboard(samples)
        assert "counters (rate/s, total)" in frame
        assert "xbgp_updates" in frame
        assert "20.0/s" in frame

    def test_progress_gauges_not_listed_as_counters(self):
        frame = render_dashboard([_sample(0.0, shards={"0": (1, 2)})])
        assert "counters" not in frame

    def test_histogram_summaries(self):
        frame = render_dashboard([_sample(0.0, latencies=[0.001] * 10)])
        assert "histograms (cumulative)" in frame
        assert "xbgp_run_seconds" in frame
        assert "count         10" in frame

    def test_counter_overflow_noted(self):
        registry = MetricsRegistry()
        for index in range(9):
            registry.counter(f"xbgp_family_{index}", "x").inc(index + 1)
        sample = make_sample(snapshot_registry(registry), 0.0, 1)
        frame = render_dashboard([sample], max_counters=6)
        assert "3 more counter familie(s) not shown" in frame

    def test_alert_table_orders_critical_first(self):
        alerts = {
            "rules": [
                {
                    "rule": "warning: a > 0",
                    "severity": "warning",
                    "state": "firing",
                    "value": 1.0,
                    "fires": 1,
                },
                {
                    "rule": "critical: b > 0",
                    "severity": "critical",
                    "state": "firing",
                    "value": 2.0,
                    "fires": 3,
                },
                {
                    "rule": "critical: c > 0",
                    "severity": "critical",
                    "state": "ok",
                    "value": 0.0,
                    "fires": 0,
                },
            ],
            "firing": 2,
            "critical_firing": True,
        }
        frame = render_dashboard([_sample(0.0, updates=1)], alerts=alerts)
        assert "alerts · 2 firing / 3 rules" in frame
        critical_at = frame.index("critical: b > 0")
        warning_at = frame.index("warning: a > 0")
        assert critical_at < warning_at
        assert "fired 3×" in frame
        assert "critical: c > 0" not in frame  # ok rules are not listed

    def test_all_quiet_when_rules_but_none_firing(self):
        alerts = {
            "rules": [
                {
                    "rule": "critical: c > 0",
                    "severity": "critical",
                    "state": "ok",
                    "value": 0.0,
                    "fires": 0,
                }
            ],
            "firing": 0,
            "critical_firing": False,
        }
        frame = render_dashboard([_sample(0.0, updates=1)], alerts=alerts)
        assert "all quiet" in frame

    def test_health_status_in_header(self):
        frame = render_dashboard(
            [_sample(0.0, updates=1)], health={"status": "degraded"}
        )
        assert "health degraded" in frame
