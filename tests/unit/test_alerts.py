"""Unit tests for repro.telemetry.alerts.

Covers the expression grammar (severity prefix, label selectors,
signals, sustain clause, rejection of junk), per-rule measurement
semantics (value / rate / quantile / absence), the ok → pending →
firing state machine with sustain, and the engine's EventLog emission
plus the inspection surface the exporter and the bench gate consume.
"""

import pytest

from repro.telemetry.aggregate import snapshot_registry
from repro.telemetry.alerts import (
    AlertEngine,
    AlertRule,
    AlertRuleError,
    load_rules,
    parse_rule,
)
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import make_sample


def _sample(ts, errors=None, latencies=(), labelled=None):
    registry = MetricsRegistry()
    if errors is not None:
        registry.counter("xbgp_errors", "errors").inc(errors)
    if latencies:
        histogram = registry.histogram("xbgp_run_seconds", "latency")
        for value in latencies:
            histogram.observe(value)
    for labels, value in (labelled or {}).items():
        registry.counter("xbgp_labelled", "labelled", point=labels).inc(value)
    return make_sample(snapshot_registry(registry), ts)


class TestGrammar:
    def test_minimal_rule_defaults(self):
        rule = parse_rule("xbgp_errors > 0")
        assert rule.family == "xbgp_errors"
        assert rule.signal == "value"
        assert rule.severity == "critical"
        assert rule.for_seconds == 0.0

    def test_warning_prefix_and_sustain(self):
        rule = parse_rule("warning: xbgp_errors rate < 100 for 10s")
        assert rule.severity == "warning"
        assert rule.signal == "rate"
        assert rule.op == "<"
        assert rule.bound == 100.0
        assert rule.for_seconds == 10.0

    def test_selector_parsing(self):
        rule = parse_rule('xbgp_labelled{point="BGP_INBOUND_FILTER"} >= 2')
        assert rule.selector == {"point": "BGP_INBOUND_FILTER"}

    def test_absent_rule(self):
        rule = parse_rule("xbgp_heartbeats absent for 5s")
        assert rule.signal == "absent"
        assert rule.for_seconds == 5.0

    def test_quantile_signal(self):
        rule = parse_rule("xbgp_run_seconds p95 > 0.5")
        assert rule.signal == "p95"

    def test_scientific_bound(self):
        assert parse_rule("xbgp_errors > 1e3").bound == 1000.0

    def test_expression_round_trips(self):
        text = "warning: xbgp_errors{point=X} rate < 100 for 10s"
        assert parse_rule(parse_rule(text).expression()).name == parse_rule(text).name

    @pytest.mark.parametrize(
        "junk",
        [
            "",
            "xbgp_errors",
            "xbgp_errors ~ 3",
            "fatal: xbgp_errors > 0",
            "xbgp_errors p42 > 0",
            "xbgp_errors > zero",
            "xbgp_errors{point} > 0",
        ],
    )
    def test_junk_rejected(self, junk):
        with pytest.raises(AlertRuleError):
            parse_rule(junk)

    def test_constructor_validates(self):
        with pytest.raises(AlertRuleError, match="signal"):
            AlertRule("f", signal="median")
        with pytest.raises(AlertRuleError, match="operator"):
            AlertRule("f", op="~")
        with pytest.raises(AlertRuleError, match="severity"):
            AlertRule("f", severity="fatal")
        with pytest.raises(AlertRuleError, match="for_seconds"):
            AlertRule("f", for_seconds=-1)

    def test_load_rules_skips_comments(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(
            "# quarantine must stay quiet\n"
            "xbgp_errors > 0\n"
            "\n"
            "warning: xbgp_run_seconds p95 > 0.5\n"
        )
        rules = load_rules(str(path))
        assert [r.severity for r in rules] == ["critical", "warning"]

    def test_load_rules_reports_line_number(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("xbgp_errors > 0\nbogus ~ rule\n")
        with pytest.raises(AlertRuleError, match=":2:"):
            load_rules(str(path))


class TestMeasurement:
    def test_value_threshold(self):
        rule = parse_rule("xbgp_errors > 2")
        assert rule.breached(_sample(0.0, errors=3)) == (True, 3.0)
        assert rule.breached(_sample(0.0, errors=1)) == (False, 1.0)
        # Missing family: not measurable, never breaches a value rule.
        assert rule.breached(_sample(0.0)) == (False, None)

    def test_selector_narrows_measurement(self):
        rule = parse_rule("xbgp_labelled{point=a} > 5")
        sample = _sample(0.0, labelled={"a": 3, "b": 30})
        assert rule.breached(sample) == (False, 3.0)

    def test_rate_needs_two_samples(self):
        rule = parse_rule("xbgp_errors rate > 1")
        first = _sample(0.0, errors=0)
        second = _sample(2.0, errors=10)
        assert rule.breached(first, None) == (False, None)
        assert rule.breached(second, first) == (True, 5.0)

    def test_quantile_measurement(self):
        rule = parse_rule("xbgp_run_seconds p95 > 0.1")
        slow = _sample(0.0, latencies=[0.5] * 10)
        fast = _sample(0.0, latencies=[0.0001] * 10)
        breached, value = rule.breached(slow)
        assert breached and value > 0.1
        assert rule.breached(fast)[0] is False

    def test_absence_semantics(self):
        rule = parse_rule("xbgp_errors absent")
        assert rule.breached(_sample(0.0))[0] is True
        # Present with value zero is *not* absent.
        assert rule.breached(_sample(0.0, errors=0))[0] is False


class TestEngine:
    def test_fire_and_resolve_transitions(self):
        engine = AlertEngine([parse_rule("xbgp_errors > 0")])
        assert engine.observe(_sample(0.0, errors=0)) == []
        fired = engine.observe(_sample(1.0, errors=2))
        assert [e["event"] for e in fired] == ["alert_fire"]
        assert engine.has_critical()
        resolved = engine.observe(_sample(2.0, errors=0))
        assert [e["event"] for e in resolved] == ["alert_resolve"]
        assert not engine.has_critical()
        assert engine.ever_fired() == ["critical: xbgp_errors > 0"]

    def test_sustain_defers_firing(self):
        engine = AlertEngine([parse_rule("xbgp_errors > 0 for 5s")])
        assert engine.observe(_sample(0.0, errors=1)) == []   # pending
        assert engine.observe(_sample(3.0, errors=1)) == []   # still pending
        fired = engine.observe(_sample(5.0, errors=1))        # sustained
        assert [e["event"] for e in fired] == ["alert_fire"]

    def test_sustain_resets_when_condition_clears(self):
        engine = AlertEngine([parse_rule("xbgp_errors > 0 for 5s")])
        engine.observe(_sample(0.0, errors=1))
        engine.observe(_sample(3.0, errors=0))   # back to ok
        engine.observe(_sample(4.0, errors=1))   # pending restarts
        assert engine.observe(_sample(8.0, errors=1)) == []
        assert engine.observe(_sample(9.0, errors=1)) != []

    def test_warning_does_not_gate_critical(self):
        engine = AlertEngine([parse_rule("warning: xbgp_errors > 0")])
        engine.observe(_sample(0.0, errors=1))
        assert not engine.has_critical()
        assert engine.ever_fired("critical") == []
        assert engine.ever_fired("warning") == ["warning: xbgp_errors > 0"]

    def test_events_written_to_log(self):
        log = EventLog(clock=lambda: 50.0)
        engine = AlertEngine([parse_rule("xbgp_errors > 0")], events=log)
        engine.evaluate([_sample(0.0, errors=1), _sample(1.0, errors=0)])
        kinds = [event["event"] for event in log.events()]
        assert kinds == ["alert_fire", "alert_resolve"]
        fire = log.events("alert_fire")[0]
        assert fire["rule"] == "critical: xbgp_errors > 0"
        assert fire["severity"] == "critical"
        assert fire["value"] == 1.0

    def test_snapshot_shape(self):
        engine = AlertEngine(
            [parse_rule("xbgp_errors > 0"), parse_rule("warning: xbgp_errors < 100")]
        )
        engine.observe(_sample(0.0, errors=1))
        snapshot = engine.snapshot()
        assert snapshot["firing"] == 2
        assert snapshot["critical_firing"] is True
        by_rule = {row["rule"]: row for row in snapshot["rules"]}
        assert by_rule["critical: xbgp_errors > 0"]["fires"] == 1
        assert by_rule["critical: xbgp_errors > 0"]["value"] == 1.0
        assert engine.firing()[0]["state"] == "firing"

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(AlertRuleError, match="duplicate"):
            AlertEngine([parse_rule("x > 0"), parse_rule("x > 0")])

    def test_absence_rule_fires_until_family_appears(self):
        engine = AlertEngine([parse_rule("xbgp_errors absent")])
        fired = engine.observe(_sample(0.0))
        assert [e["event"] for e in fired] == ["alert_fire"]
        resolved = engine.observe(_sample(1.0, errors=0))
        assert [e["event"] for e in resolved] == ["alert_resolve"]
