"""Unit tests for the profiling subsystem (repro.telemetry.profiler).

Three invariants carry the subsystem:

* engine agreement — the interpreter's exact PC counters and the JIT's
  block counters describe the same execution: identical block-level
  profiles and identical instruction totals for every paper plugin;
* toggle parity — enable/disable_profiling trades the VMM's pre-bound
  fast-path closures for instrumented ones and back, exactly like the
  provenance toggle (profiling off must cost nothing);
* accounting closure — profiled instruction sums equal the VMM's
  existing telemetry counters (no separate, subtly different count).
"""

import json
import re

import pytest

from repro.bgp import Prefix
from repro.bgp.aspath import AsPath
from repro.bgp.attributes import (
    make_as_path,
    make_geoloc,
    make_next_hop,
    make_origin,
)
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bgp.roa import Roa
from repro.core.vmm import VmmConfig
from repro.eval import bench
from repro.frr import FrrDaemon
from repro.plugins import (
    closest_exit,
    geoloc,
    origin_validation,
    route_reflector,
    valley_free,
)
from repro.sim.harness import ConvergenceHarness
from repro.telemetry import PHASES, Profiler
from repro.workload import RibGenerator

PREFIX = Prefix.parse("203.0.113.0/24")
BRUSSELS = (50.85, 4.35)
PARIS = (48.85, 2.35)
SYDNEY = (-33.86, 151.21)


def _update(asn, next_hop, coord=None, path=None):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence(path if path is not None else (asn,))),
        make_next_hop(parse_ipv4(next_hop)),
    ]
    if coord is not None:
        attrs.append(make_geoloc(*coord))
    return UpdateMessage(attributes=attrs, nlri=[PREFIX])


def _daemon(engine, manifest, neighbors, xtra=None):
    daemon = FrrDaemon(
        asn=65001,
        router_id="1.1.1.1",
        vmm_config=VmmConfig(engine=engine),
        xtra=xtra or {},
        profiling=True,
    )
    daemon.attach_manifest(manifest)
    for address, asn, rr_client in neighbors:
        daemon.add_neighbor(address, asn, lambda data: None, rr_client=rr_client)
        daemon._established[parse_ipv4(address)] = True
    return daemon


def scenario_route_reflector(engine):
    daemon = _daemon(
        engine,
        route_reflector.build_manifest(),
        [("10.0.0.8", 65001, True), ("10.0.0.9", 65001, False)],
    )
    daemon.receive_message("10.0.0.8", _update(65001, "10.0.0.8", path=()))
    return daemon


def scenario_origin_validation(engine):
    daemon = _daemon(
        engine,
        origin_validation.build_manifest([Roa(PREFIX, 65100)]),
        [("10.0.0.8", 65100, False)],
    )
    daemon.receive_message("10.0.0.8", _update(65100, "10.0.0.8"))
    return daemon


def scenario_geoloc(engine):
    daemon = _daemon(
        engine,
        geoloc.build_manifest(),
        [("10.0.0.8", 65100, False), ("10.0.0.9", 65001, False)],
        xtra={"coord": geoloc.coord_bytes(*BRUSSELS)},
    )
    daemon.receive_message("10.0.0.8", _update(65100, "10.0.0.8"))
    return daemon


def scenario_valley_free(engine):
    daemon = _daemon(
        engine,
        valley_free.build_manifest([(65100, 65200)], [65001, 65100, 65200]),
        [("10.0.0.8", 65100, False)],
    )
    daemon.receive_message(
        "10.0.0.8", _update(65100, "10.0.0.8", path=(65100, 65200))
    )
    return daemon


def scenario_closest_exit(engine):
    daemon = _daemon(
        engine,
        closest_exit.build_manifest(),
        [("10.0.0.8", 65100, False), ("10.0.0.9", 65200, False)],
        xtra={"coord": geoloc.coord_bytes(*BRUSSELS)},
    )
    # Two candidates for one prefix so BGP_DECISION actually runs;
    # the shorter path points away from Brussels.
    daemon.receive_message("10.0.0.8", _update(65100, "10.0.0.8", coord=SYDNEY))
    daemon.receive_message(
        "10.0.0.9", _update(65200, "10.0.0.9", coord=PARIS, path=(65200, 65300))
    )
    return daemon


SCENARIOS = {
    "route_reflector": scenario_route_reflector,
    "origin_validation": scenario_origin_validation,
    "geoloc": scenario_geoloc,
    "valley_free": scenario_valley_free,
    "closest_exit": scenario_closest_exit,
}


class TestEngineAgreement:
    """Interp PC counters and JIT block counters tell one story."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_block_profiles_agree(self, name):
        interp = SCENARIOS[name]("interp").profiler
        jit = SCENARIOS[name]("jit").profiler
        by_key_interp = {(p.point, p.extension): p for p in interp.profiles()}
        by_key_jit = {(p.point, p.extension): p for p in jit.profiles()}
        assert by_key_interp, f"{name}: no extension executed"
        assert by_key_interp.keys() == by_key_jit.keys()
        for key in by_key_interp:
            profile_i, profile_j = by_key_interp[key], by_key_jit[key]
            assert profile_i.engine == "interp"
            assert profile_j.engine == "jit"
            assert profile_i.runs == profile_j.runs > 0
            assert profile_i.block_profile() == profile_j.block_profile()
            assert profile_i.instructions() == profile_j.instructions() > 0

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_memory_watermarks_agree(self, name):
        interp = SCENARIOS[name]("interp").profiler
        jit = SCENARIOS[name]("jit").profiler
        for profile_i, profile_j in zip(interp.profiles(), jit.profiles()):
            assert profile_i.heap_hwm == profile_j.heap_hwm
            assert profile_i.stack_hwm == profile_j.stack_hwm


class TestDaemonProfilingToggle:
    """enable/disable_profiling trades the fast path for hooks —
    structural parity with the provenance toggle."""

    def make_daemon(self, **kwargs):
        daemon = FrrDaemon(asn=65001, router_id="1.1.1.1", **kwargs)
        daemon.attach_manifest(route_reflector.build_manifest())
        return daemon

    def test_fast_path_active_without_profiling(self):
        daemon = self.make_daemon()
        assert daemon.profiler is None
        assert daemon.vmm._fast

    def test_enable_drops_fast_path_and_wires_hooks(self):
        daemon = self.make_daemon()
        profiler = daemon.enable_profiling()
        assert daemon.profiler is profiler
        assert daemon.vmm.profiler is profiler
        # Profiling hooks live only in the general loop: every
        # pre-bound closure must be gone.
        assert not daemon.vmm._fast
        for chain in daemon.vmm._chains.values():
            for item in chain:
                if item.vm is not None:
                    assert item.vm.profile is not None
                assert item.profile is not None

    def test_disable_restores_fast_path(self):
        daemon = self.make_daemon()
        daemon.enable_profiling()
        daemon.disable_profiling()
        assert daemon.profiler is None
        assert daemon.vmm.profiler is None
        assert daemon.vmm._fast
        for chain in daemon.vmm._chains.values():
            for item in chain:
                if item.vm is not None:
                    assert item.vm.profile is None
                assert item.profile is None
                if item.hist is not None:
                    assert item.observe == item.hist.observe

    def test_constructor_flag_enables_profiling(self):
        daemon = self.make_daemon(profiling=True)
        assert daemon.profiler is not None
        assert daemon.profiler.implementation == "frr"
        assert not daemon.vmm._fast

    def test_enable_accepts_custom_profiler(self):
        daemon = self.make_daemon()
        custom = Profiler(router="1.1.1.1", implementation="frr")
        installed = daemon.enable_profiling(custom)
        assert installed is custom
        assert daemon.vmm.profiler is custom

    def test_round_trip_runs_identically(self):
        """A run after disable produces the same RIB as never enabling."""
        toggled = self.make_daemon()
        toggled.enable_profiling()
        toggled.disable_profiling()
        plain = self.make_daemon()
        for daemon in (toggled, plain):
            daemon.add_neighbor("10.0.0.8", 65001, lambda data: None, rr_client=True)
            daemon._established[parse_ipv4("10.0.0.8")] = True
            daemon.receive_message("10.0.0.8", _update(65001, "10.0.0.8", path=()))
        assert toggled.loc_rib.lookup(PREFIX) is not None
        assert plain.loc_rib.lookup(PREFIX) is not None
        assert toggled.vmm.stats() == plain.vmm.stats()


class TestAccountingClosure:
    """Profiled sums must equal the VMM's own telemetry counters."""

    @pytest.mark.parametrize("engine", ["interp", "jit"])
    def test_instruction_sums_match_telemetry(self, engine):
        routes = RibGenerator(n_routes=30, seed=20200604).generate()
        harness = ConvergenceHarness(
            "frr",
            "route_reflection",
            "extension",
            routes,
            engine=engine,
            profiling=True,
        )
        harness.run()
        snapshot = harness.telemetry_snapshot()
        series = (
            snapshot["metrics"]
            .get("xbgp_extension_instructions", {})
            .get("series", [])
        )
        counted = {
            (s["labels"]["point"], s["labels"]["extension"]): s["value"]
            for s in series
        }
        profiles = list(harness.dut.profiler.profiles())
        assert profiles
        for profile in profiles:
            assert (
                profile.instructions()
                == counted[(profile.point, profile.extension)]
            )

    def test_phase_breakdown_covers_update_path(self):
        routes = RibGenerator(n_routes=30, seed=20200604).generate()
        harness = ConvergenceHarness(
            "frr", "route_reflection", "extension", routes, profiling=True
        )
        harness.run()
        report = harness.profile_report()
        recorded = set(report["phases"])
        assert recorded <= set(PHASES)
        assert {
            "decode",
            "bgp_inbound_filter",
            "bgp_decision",
            "bgp_outbound_filter",
            "bgp_encode_message",
        } <= recorded
        for entry in report["phases"].values():
            assert entry["count"] > 0
            assert entry["seconds"] >= 0.0


class TestCollapsedStacks:
    """Export must be loadable by speedscope / flamegraph.pl: every
    line is `frame;frame;... <integer>`."""

    LINE = re.compile(r"^[^; ]+(;[^; ]+)+ \d+$")

    def _profiler(self):
        return scenario_route_reflector("jit").profiler

    def test_instruction_weights_format(self):
        profiler = self._profiler()
        lines = profiler.collapsed(weights="instructions")
        assert lines
        for line in lines:
            assert self.LINE.match(line), line
        # Leaf frames are pc blocks; weights sum to total instructions.
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == sum(p.instructions() for p in profiler.profiles())

    def test_time_weights_format(self):
        profiler = self._profiler()
        lines = profiler.collapsed(weights="time")
        assert lines
        for line in lines:
            assert self.LINE.match(line), line

    def test_export_writes_file(self, tmp_path):
        profiler = self._profiler()
        path = tmp_path / "collapsed.txt"
        count = profiler.export_collapsed(str(path), weights="instructions")
        assert count == len(path.read_text().splitlines()) > 0


class TestBenchRecords:
    """BENCH_*.json schema, round-trip and the regression gate."""

    def _record(self, scenario="route-reflection-frr-jit", median=0.1):
        return bench.make_record(
            scenario,
            [median, median, median * 1.2, median * 0.9, median],
            400,
            instructions=12345,
            timestamp="2026-08-06T00:00:00+00:00",
            sha="deadbeef",
        )

    def test_make_record_statistics(self):
        record = self._record()
        assert record["schema_version"] == bench.SCHEMA_VERSION
        assert record["runs"] == 5
        assert record["median_wall_seconds"] == pytest.approx(0.1)
        assert record["p95_wall_seconds"] == pytest.approx(0.12)
        assert record["routes_per_second"] == pytest.approx(4000.0)
        assert record["instructions"] == 12345
        assert record["git_sha"] == "deadbeef"

    def test_write_load_round_trip(self, tmp_path):
        record = self._record()
        path = bench.write_record(record, str(tmp_path))
        assert path.endswith("BENCH_route-reflection-frr-jit.json")
        assert bench.load_record(path) == record

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 999, "scenario": "x"}))
        with pytest.raises(ValueError):
            bench.load_record(str(path))

    def test_compare_within_noise_passes(self):
        baseline = self._record(median=0.1)
        current = self._record(median=0.11)
        result = bench.compare(current, baseline)
        assert not result["regression"]
        assert "ok" in bench.render_compare(result)

    def test_compare_flags_synthetic_2x_slowdown(self):
        baseline = self._record(median=0.1)
        current = self._record(median=0.2)
        result = bench.compare(current, baseline)
        assert result["regression"]
        assert result["ratio"] == pytest.approx(2.0)
        assert "REGRESSION" in bench.render_compare(result)

    def test_compare_threshold_is_honored(self):
        baseline = self._record(median=0.1)
        current = self._record(median=0.2)
        assert not bench.compare(current, baseline, threshold=1.5)["regression"]

    def test_compare_rejects_scenario_mismatch(self):
        with pytest.raises(ValueError):
            bench.compare(self._record("a"), self._record("b"))
