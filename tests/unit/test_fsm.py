"""Unit tests for the RFC 4271 session FSM."""

import pytest

from repro.bgp.constants import NotificationCode
from repro.bgp.fsm import Action, FsmEvent, FsmState, SessionFsm
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.prefix import parse_ipv4


def make_fsm():
    return SessionFsm(local_asn=65001, router_id=parse_ipv4("1.1.1.1"), hold_time=90)


def peer_open():
    return OpenMessage.for_speaker(65002, parse_ipv4("2.2.2.2"), hold_time=30)


def establish(fsm):
    fsm.process(FsmEvent.MANUAL_START)
    fsm.process(FsmEvent.TCP_CONNECTED)
    fsm.process(FsmEvent.MESSAGE_RECEIVED, peer_open())
    return fsm.process(FsmEvent.MESSAGE_RECEIVED, KeepaliveMessage())


class TestHappyPath:
    def test_start_connects(self):
        fsm = make_fsm()
        actions = fsm.process(FsmEvent.MANUAL_START)
        assert fsm.state == FsmState.CONNECT
        assert actions[0][0] == Action.START_CONNECT

    def test_tcp_connected_sends_open(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        actions = fsm.process(FsmEvent.TCP_CONNECTED)
        assert fsm.state == FsmState.OPEN_SENT
        assert actions[0][0] == Action.SEND_OPEN
        assert isinstance(actions[0][1], OpenMessage)

    def test_open_received_sends_keepalive(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_CONNECTED)
        actions = fsm.process(FsmEvent.MESSAGE_RECEIVED, peer_open())
        assert fsm.state == FsmState.OPEN_CONFIRM
        assert actions[0][0] == Action.SEND_KEEPALIVE

    def test_keepalive_establishes(self):
        fsm = make_fsm()
        actions = establish(fsm)
        assert fsm.state == FsmState.ESTABLISHED
        assert actions[0][0] == Action.SESSION_ESTABLISHED

    def test_hold_time_negotiated_to_minimum(self):
        fsm = make_fsm()
        establish(fsm)
        assert fsm.negotiated_hold_time == 30

    def test_update_delivered_when_established(self):
        fsm = make_fsm()
        establish(fsm)
        update = UpdateMessage()
        actions = fsm.process(FsmEvent.MESSAGE_RECEIVED, update)
        assert actions == [(Action.DELIVER_UPDATE, update)]

    def test_keepalive_timer_sends_keepalive(self):
        fsm = make_fsm()
        establish(fsm)
        actions = fsm.process(FsmEvent.KEEPALIVE_TIMER_EXPIRES)
        assert actions[0][0] == Action.SEND_KEEPALIVE


class TestFailurePaths:
    def test_tcp_failed_from_connect_goes_active(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_FAILED)
        assert fsm.state == FsmState.ACTIVE

    def test_retry_from_active_reconnects(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_FAILED)
        actions = fsm.process(FsmEvent.CONNECTION_RETRY_EXPIRES)
        assert fsm.state == FsmState.CONNECT
        assert actions[0][0] == Action.START_CONNECT

    def test_hold_timer_in_established_tears_down(self):
        fsm = make_fsm()
        establish(fsm)
        actions = fsm.process(FsmEvent.HOLD_TIMER_EXPIRES)
        kinds = [action for action, _ in actions]
        assert Action.SEND_NOTIFICATION in kinds
        assert Action.SESSION_DOWN in kinds
        assert fsm.state == FsmState.IDLE

    def test_notification_received_drops_session(self):
        fsm = make_fsm()
        establish(fsm)
        actions = fsm.process(
            FsmEvent.MESSAGE_RECEIVED, NotificationMessage(NotificationCode.CEASE)
        )
        assert (Action.SESSION_DOWN, None) in actions
        assert fsm.state == FsmState.IDLE

    def test_unexpected_message_in_open_sent_is_fsm_error(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_CONNECTED)
        actions = fsm.process(FsmEvent.MESSAGE_RECEIVED, UpdateMessage())
        assert actions[0][0] == Action.SEND_NOTIFICATION
        assert actions[0][1].code == NotificationCode.FSM_ERROR
        assert fsm.state == FsmState.IDLE

    def test_open_with_bad_hold_time_rejected(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_CONNECTED)
        bad = OpenMessage(65002, 1, parse_ipv4("2.2.2.2"))
        actions = fsm.process(FsmEvent.MESSAGE_RECEIVED, bad)
        assert actions[0][0] == Action.SEND_NOTIFICATION
        assert fsm.state == FsmState.IDLE

    def test_open_with_bad_router_id_rejected(self):
        fsm = make_fsm()
        fsm.process(FsmEvent.MANUAL_START)
        fsm.process(FsmEvent.TCP_CONNECTED)
        bad = OpenMessage(65002, 90, 0)
        actions = fsm.process(FsmEvent.MESSAGE_RECEIVED, bad)
        assert actions[0][0] == Action.SEND_NOTIFICATION

    def test_manual_stop_sends_cease(self):
        fsm = make_fsm()
        establish(fsm)
        actions = fsm.process(FsmEvent.MANUAL_STOP)
        assert actions[0][0] == Action.SEND_NOTIFICATION
        assert actions[0][1].code == NotificationCode.CEASE
        assert fsm.state == FsmState.IDLE

    def test_observer_sees_transitions(self):
        fsm = make_fsm()
        seen = []
        fsm.add_observer(lambda old, new: seen.append((old, new)))
        establish(fsm)
        assert seen[0] == (FsmState.IDLE, FsmState.CONNECT)
        assert seen[-1][1] == FsmState.ESTABLISHED
