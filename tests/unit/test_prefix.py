"""Unit tests for repro.bgp.prefix."""

import pytest

from repro.bgp.prefix import (
    Prefix,
    PrefixDecodeError,
    format_ipv4,
    mask_for,
    parse_ipv4,
)


class TestParseFormat:
    def test_parse_dotted_quad(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_broadcast(self):
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_format_roundtrip(self):
        for text in ("192.0.2.1", "8.8.8.8", "172.16.254.3"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.0")

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.0.256")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)


class TestMask:
    def test_mask_zero(self):
        assert mask_for(0) == 0

    def test_mask_full(self):
        assert mask_for(32) == 0xFFFFFFFF

    def test_mask_slash8(self):
        assert mask_for(8) == 0xFF000000

    def test_mask_rejects_33(self):
        with pytest.raises(ValueError):
            mask_for(33)

    def test_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_for(-1)


class TestPrefix:
    def test_canonicalises_host_bits(self):
        assert Prefix.parse("10.1.2.3/8") == Prefix.parse("10.0.0.0/8")

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("192.0.2.1").length == 32

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_immutable(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            prefix.network = 0

    def test_hashable_and_equal(self):
        assert hash(Prefix.parse("10.0.0.0/8")) == hash(Prefix.parse("10.0.0.0/8"))
        assert Prefix.parse("10.0.0.0/8") != Prefix.parse("10.0.0.0/9")

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a < b < c

    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_not_contains_less_specific(self):
        assert not Prefix.parse("10.0.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_not_contains_sibling(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/16"))

    def test_contains_address(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.contains_address(parse_ipv4("192.0.2.200"))
        assert not p.contains_address(parse_ipv4("192.0.3.1"))

    def test_overlaps_symmetric(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.2.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_do_not_overlap(self):
        assert not Prefix.parse("10.0.0.0/8").overlaps(Prefix.parse("11.0.0.0/8"))

    def test_bit_msb_first(self):
        p = Prefix.parse("128.0.0.0/1")
        assert p.bit(0) == 1
        assert Prefix.parse("64.0.0.0/2").bit(0) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Prefix.parse("10.0.0.0/8").bit(32)


class TestWire:
    def test_encode_slash24(self):
        assert Prefix.parse("192.0.2.0/24").encode() == bytes([24, 192, 0, 2])

    def test_encode_slash0(self):
        assert Prefix.parse("0.0.0.0/0").encode() == bytes([0])

    def test_encode_partial_byte(self):
        # /12 needs two bytes of network.
        assert Prefix.parse("172.16.0.0/12").encode() == bytes([12, 172, 16])

    def test_decode_roundtrip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "172.16.0.0/12", "192.0.2.1/32"):
            prefix = Prefix.parse(text)
            decoded, consumed = Prefix.decode(prefix.encode())
            assert decoded == prefix
            assert consumed == len(prefix.encode())

    def test_decode_all_packed_run(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.2.0/24")]
        blob = b"".join(p.encode() for p in prefixes)
        assert list(Prefix.decode_all(blob)) == prefixes

    def test_decode_rejects_length_over_32(self):
        with pytest.raises(PrefixDecodeError):
            Prefix.decode(bytes([33, 1, 2, 3, 4, 5]))

    def test_decode_rejects_truncated_body(self):
        with pytest.raises(PrefixDecodeError):
            Prefix.decode(bytes([24, 192, 0]))

    def test_decode_rejects_empty(self):
        with pytest.raises(PrefixDecodeError):
            Prefix.decode(b"")
