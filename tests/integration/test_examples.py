"""Integration: the shipped examples must run clean.

Each example is a deliverable; these tests execute them as scripts
(the way a user would) and check they exit 0.  The two slowest are
marked accordingly.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "igp_cost_filter.py",
        "origin_validation.py",
        "closest_exit.py",
        "mrt_workload.py",
        "live_session.py",
    ],
)
def test_fast_examples(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should narrate what they show"


@pytest.mark.slow
def test_datacenter_example():
    result = run_example("datacenter_valley_free.py", timeout=300)
    assert result.returncode == 0, result.stderr
    assert "partitions" in result.stdout


@pytest.mark.slow
def test_route_reflection_example():
    result = run_example("route_reflection.py", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "native and extension reflect the same" in result.stdout
