"""Integration: §3.4 — origin validation as extension code."""

import pytest

from repro.bgp.constants import RouteOriginValidity
from repro.bgp.roa import make_roas_for_prefixes
from repro.core.insertion_points import InsertionPoint
from repro.plugins import origin_validation
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, origins_of


def extension_counters(harness):
    chain = harness.dut.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
    return origin_validation.read_validity_counters(chain[0].state)


@pytest.mark.parametrize("implementation", ["frr", "bird"])
class TestValidation:
    def test_extension_counters_match_native(self, implementation):
        routes = RibGenerator(n_routes=400, seed=21).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=21)

        native = ConvergenceHarness(implementation, "origin_validation", "native", routes, roas)
        native.run()
        native_counts = {
            RouteOriginValidity[name].name: count
            for name, count in native.dut.validity_counters.items()
        }

        extension = ConvergenceHarness(
            implementation, "origin_validation", "extension", routes, roas
        )
        extension.run()
        assert extension_counters(extension) == native_counts

    def test_roughly_75_percent_valid(self, implementation):
        routes = RibGenerator(n_routes=600, seed=22).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=22)
        harness = ConvergenceHarness(implementation, "origin_validation", "extension", routes, roas)
        harness.run()
        counters = extension_counters(harness)
        total = sum(counters.values())
        assert total == 600
        assert 0.70 < counters["VALID"] / total < 0.80

    def test_invalid_routes_not_discarded(self, implementation):
        # Paper: "checks the validity ... but does not discard".
        routes = RibGenerator(n_routes=200, seed=23).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.5, seed=23)
        harness = ConvergenceHarness(implementation, "origin_validation", "extension", routes, roas)
        harness.run()
        assert len(harness.dut.loc_rib) == 200
        assert len(harness.collector) == 200

    def test_no_extension_errors(self, implementation):
        routes = RibGenerator(n_routes=150, seed=24).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=24)
        harness = ConvergenceHarness(implementation, "origin_validation", "extension", routes, roas)
        harness.run()
        stats = harness.extension_stats()
        assert stats["rov_import"]["errors"] == 0
        assert harness.dut.vmm.fallbacks == 0


class TestEngines:
    def test_pyext_counters_match_bytecode(self):
        routes = RibGenerator(n_routes=300, seed=25).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=25)

        bytecode = ConvergenceHarness("bird", "origin_validation", "extension", routes, roas)
        bytecode.run()
        jit_counts = extension_counters(bytecode)

        pyext = ConvergenceHarness(
            "bird", "origin_validation", "extension", routes, roas, engine="pyext"
        )
        pyext.run()
        chain = pyext.dut.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
        # The pyext program records into its own state object.
        from repro.plugins.pynative import OriginValidationState

        state = None
        for program in pyext.dut.vmm._programs.values():
            state = getattr(program, "py_state", None)
            if state is not None:
                break
        assert state is not None
        assert state.counters == jit_counts

    def test_interp_engine_agrees_with_jit(self):
        routes = RibGenerator(n_routes=120, seed=26).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=26)
        counters = {}
        for engine in ("interp", "jit"):
            harness = ConvergenceHarness(
                "frr", "origin_validation", "extension", routes, roas, engine=engine
            )
            harness.run()
            counters[engine] = extension_counters(harness)
        assert counters["interp"] == counters["jit"]
