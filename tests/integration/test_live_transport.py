"""Integration: real TCP sessions via the asyncio transport."""

import asyncio

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.net import BgpSpeaker

PREFIX = Prefix.parse("203.0.113.0/24")


async def _wait_for(predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return False


async def _pair(port_a, port_b, asn_a=65001, asn_b=65001):
    a = FrrDaemon(asn=asn_a, router_id="1.1.1.1")
    b = BirdDaemon(asn=asn_b, router_id="2.2.2.2")
    speaker_a = BgpSpeaker(a, port=port_a)
    speaker_b = BgpSpeaker(b, port=port_b)
    speaker_a.register_neighbor("2.2.2.2", asn_b)
    speaker_b.register_neighbor("1.1.1.1", asn_a)
    await speaker_b.listen()
    session = await speaker_a.connect("2.2.2.2", "127.0.0.1", port_b)
    await asyncio.wait_for(session.established.wait(), timeout=5)
    return a, b, speaker_a, speaker_b, session


class TestLiveSessions:
    def test_establishment_and_update_exchange(self):
        async def scenario():
            a, b, speaker_a, speaker_b, session = await _pair(11801, 11802)
            try:
                a.originate(
                    PREFIX,
                    attributes=[
                        make_origin(Origin.IGP),
                        make_as_path(AsPath()),
                        make_next_hop(a.local_address),
                    ],
                )
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is not None)
            finally:
                await speaker_a.close()
                await speaker_b.close()

        asyncio.run(scenario())

    def test_withdrawal_over_tcp(self):
        async def scenario():
            a, b, speaker_a, speaker_b, session = await _pair(11803, 11804)
            try:
                a.originate(PREFIX)
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is not None)
                a.withdraw_local(PREFIX)
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is None)
            finally:
                await speaker_a.close()
                await speaker_b.close()

        asyncio.run(scenario())

    def test_ebgp_session_prepends_as(self):
        async def scenario():
            a, b, speaker_a, speaker_b, session = await _pair(
                11805, 11806, asn_a=65001, asn_b=65002
            )
            try:
                a.originate(PREFIX)
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is not None)
                route = b.loc_rib.lookup(PREFIX)
                assert list(route.as_path().asn_iter()) == [65001]
            finally:
                await speaker_a.close()
                await speaker_b.close()

        asyncio.run(scenario())

    def test_session_down_on_close(self):
        async def scenario():
            a, b, speaker_a, speaker_b, session = await _pair(11807, 11808)
            try:
                a.originate(PREFIX)
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is not None)
                await speaker_a.close()
                # The passive side notices the hangup and flushes.
                assert await _wait_for(lambda: b.loc_rib.lookup(PREFIX) is None)
            finally:
                await speaker_b.close()

        asyncio.run(scenario())
