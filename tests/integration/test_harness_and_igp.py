"""Integration: the Fig. 3 harness and the §3.1 IGP filter scenario."""

import pytest

from repro.bgp import Prefix
from repro.bgp.roa import make_roas_for_prefixes
from repro.bird import BirdDaemon
from repro.igp import IgpTopology, IgpView, Spf
from repro.plugins import igp_filter
from repro.sim import Network
from repro.sim.harness import Collector, ConvergenceHarness
from repro.workload import RibGenerator, origins_of


class TestCollector:
    def test_counts_prefixes_and_withdrawals(self):
        from repro.bgp.messages import UpdateMessage

        collector = Collector()
        announce = UpdateMessage(nlri=[Prefix.parse("10.0.0.0/8")])
        collector.receive(announce.encode())
        assert len(collector) == 1
        withdraw = UpdateMessage(withdrawn=[Prefix.parse("10.0.0.0/8")])
        collector.receive(withdraw.encode())
        assert len(collector) == 0
        assert Prefix.parse("10.0.0.0/8") in collector.withdrawn


class TestHarness:
    @pytest.mark.parametrize("implementation", ["frr", "bird"])
    @pytest.mark.parametrize("feature", ["route_reflection", "origin_validation"])
    @pytest.mark.parametrize("mode", ["native", "extension"])
    def test_all_arms_converge(self, implementation, feature, mode):
        routes = RibGenerator(n_routes=120, seed=41).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=41)
        harness = ConvergenceHarness(implementation, feature, mode, routes, roas)
        elapsed = harness.run()
        assert elapsed > 0
        assert len(harness.collector) == 120

    def test_incomplete_convergence_detected(self):
        routes = RibGenerator(n_routes=30, seed=42).generate()
        harness = ConvergenceHarness("frr", "plain", "native", routes)
        harness.feed = harness.feed[:1]  # drop most of the feed
        with pytest.raises(RuntimeError, match="incomplete"):
            harness.run()

    def test_bad_arguments_rejected(self):
        routes = RibGenerator(n_routes=5, seed=43).generate()
        with pytest.raises(ValueError):
            ConvergenceHarness("quagga", "plain", "native", routes)
        with pytest.raises(ValueError):
            ConvergenceHarness("frr", "multicast", "native", routes)
        with pytest.raises(ValueError):
            ConvergenceHarness("frr", "plain", "hybrid", routes)
        with pytest.raises(ValueError):
            ConvergenceHarness("frr", "plain", "native", routes, engine="fpga")


class TestIgpFilterScenario:
    """§3.1: the transatlantic-failure scenario from the paper."""

    def _build(self):
        topology = IgpTopology()
        topology.add_node("london", "10.1.0.1")
        topology.add_node("frankfurt", "10.1.0.3")
        topology.add_node("newyork", "10.1.0.4")
        topology.add_link("london", "frankfurt", 10)
        topology.add_link("london", "newyork", 1000)
        topology.add_link("frankfurt", "newyork", 1000)
        spf = Spf(topology)

        network = Network()
        frankfurt = BirdDaemon(
            asn=65001,
            router_id="10.1.0.3",
            igp=IgpView(spf, topology, "frankfurt"),
            nexthop_self=False,
        )
        frankfurt.attach_manifest(igp_filter.build_manifest(max_metric=500))
        london = BirdDaemon(asn=65001, router_id="10.1.0.1")
        peer = BirdDaemon(asn=65200, router_id="9.9.9.9")
        network.add_router("london", london)
        network.add_router("frankfurt", frankfurt)
        network.add_router("peer", peer)
        network.connect("london", "10.1.0.1", "frankfurt", "10.1.0.3")
        network.connect("frankfurt", "10.1.0.30", "peer", "9.9.9.9")
        network.establish_all()
        return topology, spf, network, london, frankfurt, peer

    def test_route_exported_while_igp_close(self):
        topology, spf, network, london, frankfurt, peer = self._build()
        prefix = Prefix.parse("198.18.0.0/16")
        london.originate(prefix, next_hop=topology.loopback("london"))
        network.run()
        assert peer.loc_rib.lookup(prefix) is not None

    def test_route_withdrawn_when_igp_distance_explodes(self):
        topology, spf, network, london, frankfurt, peer = self._build()
        prefix = Prefix.parse("198.18.0.0/16")
        london.originate(prefix, next_hop=topology.loopback("london"))
        network.run()
        topology.remove_link("london", "frankfurt")
        spf.invalidate()
        frankfurt._export_prefix(prefix)
        network.run()
        assert peer.loc_rib.lookup(prefix) is None
        assert frankfurt.stats["export_rejected"] >= 1

    def test_ibgp_sessions_unfiltered(self):
        # Listing 1 calls next() for iBGP sessions: a route whose
        # nexthop the IGP cannot even resolve still flows to iBGP
        # peers, while the same route is rejected toward eBGP peers.
        topology, spf, network, london, frankfurt, peer = self._build()
        ibgp2 = BirdDaemon(asn=65001, router_id="10.1.0.7")
        ebgp2 = BirdDaemon(asn=65300, router_id="8.8.8.8")
        network.add_router("ibgp2", ibgp2)
        network.add_router("ebgp2", ebgp2)
        network.connect("frankfurt", "10.1.0.31", "ibgp2", "10.1.0.7")
        network.connect("frankfurt", "10.1.0.32", "ebgp2", "8.8.8.8")
        network.establish_all()
        # The eBGP peer announces a prefix; its nexthop (9.9.9.9) is
        # not an IGP loopback, so the metric is unreachable.
        prefix = Prefix.parse("198.19.0.0/16")
        peer.originate(prefix)
        network.run()
        assert ibgp2.loc_rib.lookup(prefix) is not None  # iBGP untouched
        assert ebgp2.loc_rib.lookup(prefix) is None  # eBGP filtered
