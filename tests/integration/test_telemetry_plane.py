"""Integration: the cross-process telemetry plane end to end.

A sharded replay with worker telemetry on must produce a merged
registry whose counters are *exactly* the counters a sequential
(single-shard) replay of the same workload records — instrumentation
that changes under partitioning would be lying.  On top of that, the
lifecycle event log must tell a coherent story (routes announced ==
routes finished), and the HTTP exporter must serve live progress
mid-replay, then the merged registry afterwards.
"""

import json
import urllib.request

import pytest

from repro.scale import ShardedReplay
from repro.telemetry import EventLog, ReplayProgress, TelemetryExporter
from repro.telemetry.metrics import MetricsRegistry
from repro.workload import RibGenerator


def counter_values(registry, prefix="xbgp_extension"):
    out = {}
    for family in registry.families():
        if family.kind != "counter" or not family.name.startswith(prefix):
            continue
        for values, child in family.children.items():
            out[(family.name, values)] = child.value
    return out


def run_replay(implementation, routes, shards, **kwargs):
    return ShardedReplay(
        implementation,
        routes,
        feature="route_reflection",
        mode="extension",
        shards=shards,
        batch=16,
        backend="inline",
        telemetry=True,
        **kwargs,
    ).run()


@pytest.mark.parametrize("implementation", ["frr", "bird"])
def test_merged_worker_counters_match_sequential(implementation):
    routes = RibGenerator(n_routes=240, seed=17).generate()
    sequential = run_replay(implementation, routes, shards=1)
    sharded = run_replay(implementation, routes, shards=3)
    assert sharded.shards == 3

    seq_counts = counter_values(sequential.merged_registry(shard_labels=False))
    sharded_counts = counter_values(sharded.merged_registry(shard_labels=False))
    assert seq_counts  # the extension actually executed
    assert sharded_counts == seq_counts

    # The shard-labeled view carries the same totals, attributed.
    labeled = sharded.merged_registry(shard_labels=True)
    labeled_totals = {}
    for (name, values), value in counter_values(labeled).items():
        family = labeled._families[name]
        stripped = tuple(
            v
            for label_name, v in zip(family.label_names, values)
            if label_name != "shard"
        )
        labeled_totals[(name, stripped)] = (
            labeled_totals.get((name, stripped), 0) + value
        )
    assert labeled_totals == seq_counts


def test_event_log_tells_a_coherent_story():
    routes = RibGenerator(n_routes=200, seed=23).generate()
    log = EventLog()
    result = run_replay("frr", routes, shards=2, events=log, heartbeat_every=2)
    assert result.prefix_count == len(routes)

    starts = log.events("replay_start")
    finishes = log.events("replay_finish")
    assert len(starts) == len(finishes) == 1
    assert starts[0]["routes"] == len(routes)
    assert finishes[0]["wall_seconds"] > 0

    shard_finishes = log.events("shard_finish")
    assert len(shard_finishes) == 2
    assert sum(e["routes"] for e in shard_finishes) == len(routes)
    assert log.events("shard_progress")  # heartbeats actually streamed

    # seq is strictly increasing across the whole log.
    seqs = [e["seq"] for e in log.events()]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_exporter_serves_live_progress_then_merged_registry():
    routes = RibGenerator(n_routes=150, seed=29).generate()
    live_registry = MetricsRegistry()
    progress = ReplayProgress(live_registry)
    scraped_mid_replay = []

    with TelemetryExporter(registry=live_registry) as exporter:

        def on_heartbeat(event):
            with exporter.lock:
                progress.on_event(event)
            if event.get("event") == "shard_progress" and not scraped_mid_replay:
                with urllib.request.urlopen(
                    exporter.url("/metrics"), timeout=5
                ) as response:
                    scraped_mid_replay.append(response.read().decode())

        result = run_replay(
            "frr", routes, shards=2, progress=on_heartbeat, heartbeat_every=2
        )

        # The mid-replay scrape saw live progress gauges.
        assert scraped_mid_replay
        assert "xbgp_replay_progress_routes" in scraped_mid_replay[0]
        assert "xbgp_replay_done_ratio" in scraped_mid_replay[0]

        # Swap to the merged post-replay registry, as the bench does.
        exporter.replace_sources(
            registry=result.merged_registry(shard_labels=True),
            health=result.telemetry["health"],
        )
        with urllib.request.urlopen(exporter.url("/metrics"), timeout=5) as response:
            text = response.read().decode()
        assert 'shard="0"' in text and 'shard="1"' in text
        assert "xbgp_extension_executions_total" in text
        with urllib.request.urlopen(exporter.url("/health"), timeout=5) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["extensions"] == len(result.telemetry["health"])

    assert progress.finished
    assert progress.ratio() == 1.0


def test_worker_telemetry_off_ships_nothing():
    routes = RibGenerator(n_routes=100, seed=31).generate()
    result = ShardedReplay(
        "frr", routes, shards=2, backend="inline"
    ).run()
    assert result.telemetry is None
    assert all(r["telemetry"] is None for r in result.per_shard)
    with pytest.raises(RuntimeError, match="telemetry off"):
        result.merged_registry()


@pytest.mark.parametrize("implementation", ["frr", "bird"])
def test_merged_timeseries_final_sample_matches_sequential(implementation):
    """The temporal extension of partition invariance: the *final*
    sample of the merged shard-labeled time-series carries exactly the
    counter totals a sequential replay's final sample records."""
    from repro.telemetry.timeseries import counter_total

    routes = RibGenerator(n_routes=240, seed=37).generate()
    sequential = run_replay(
        implementation, routes, shards=1, timeseries_every=40
    )
    sharded = run_replay(
        implementation, routes, shards=3, timeseries_every=40
    )
    assert sequential.shard_timeseries is not None
    assert sharded.shard_timeseries is not None
    assert len(sharded.shard_timeseries) == 3

    seq_final = sequential.merged_timeseries(shard_labels=False)[-1]
    merged = sharded.merged_timeseries()
    final = merged[-1]
    for family in (
        "xbgp_extension_executions",
        "xbgp_extension_instructions",
        "xbgp_extension_next",
    ):
        seq_total = counter_total(seq_final, family)
        assert seq_total is not None and seq_total > 0
        assert counter_total(final, family) == seq_total
        # The shard attribution partitions the total exactly.
        per_shard = [
            counter_total(final, family, {"shard": str(index)}) or 0.0
            for index in range(3)
        ]
        assert sum(per_shard) == seq_total
        assert all(value > 0 for value in per_shard)

    # Counters are monotone along the merged series.
    executions = [
        counter_total(sample, "xbgp_extension_executions") or 0.0
        for sample in merged
    ]
    assert executions == sorted(executions)
    # Samples exist beyond the final one: the workers really sampled
    # mid-replay instead of snapshotting once at the end.
    assert len(merged) > 3


def test_timeseries_off_ships_no_samples():
    routes = RibGenerator(n_routes=100, seed=41).generate()
    result = run_replay("frr", routes, shards=2)
    assert result.shard_timeseries is None
    with pytest.raises(RuntimeError, match="without time-series"):
        result.merged_timeseries()
