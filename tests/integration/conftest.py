"""Failure observability for integration tests.

When an integration test fails, whatever the daemons under test
recorded — VMM trace rings, provenance stories, spans, convergence
state — is exactly what's needed to diagnose the failure, and exactly
what's gone once the process exits.  This conftest keeps a weak
registry of every daemon the test constructed and, on failure, dumps
each one's trace ring and provenance as JSON Lines under
``$REPRO_FAILURE_ARTIFACT_DIR`` (default ``test-failure-artifacts/``),
one directory per failed test.  CI uploads that directory as a build
artifact (see .github/workflows/ci.yml).
"""

import os
import re
import weakref

import pytest

from repro.bgp.prefix import format_ipv4
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon

#: Daemons constructed since the current test started (weak: a daemon
#: the test dropped and the GC collected is of no forensic interest).
_LIVE = weakref.WeakSet()


def _register_daemon_constructions() -> None:
    for cls in (FrrDaemon, BirdDaemon):
        original = cls.__init__

        def wrapped(self, *args, _original=original, **kwargs):
            _original(self, *args, **kwargs)
            _LIVE.add(self)

        wrapped.__wrapped__ = original
        cls.__init__ = wrapped


_register_daemon_constructions()


@pytest.fixture(autouse=True)
def _fresh_daemon_registry():
    _LIVE.clear()
    yield


def artifact_root() -> str:
    return os.environ.get("REPRO_FAILURE_ARTIFACT_DIR", "test-failure-artifacts")


def dump_observability(root: str, test_id: str):
    """Write every live daemon's trace ring and provenance under
    ``root/<sanitized test id>/``; returns the paths written."""
    directory = os.path.join(root, re.sub(r"[^\w.-]+", "_", test_id))
    written = []
    for index, daemon in enumerate(sorted(_LIVE, key=id)):
        implementation = getattr(daemon, "implementation", "daemon")
        try:
            router = format_ipv4(daemon.router_id)
        except Exception:
            router = str(getattr(daemon, "router_id", index))
        stem = f"{index}-{implementation}-{router}"
        telemetry = getattr(getattr(daemon, "vmm", None), "telemetry", None)
        tracker = getattr(daemon, "provenance", None)
        if telemetry is None and tracker is None:
            continue
        os.makedirs(directory, exist_ok=True)
        if telemetry is not None:
            path = os.path.join(directory, f"{stem}-trace.jsonl")
            telemetry.trace.export_jsonl(path)
            written.append(path)
        if tracker is not None:
            path = os.path.join(directory, f"{stem}-provenance.jsonl")
            tracker.export_jsonl(path)
            written.append(path)
    return written


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    try:
        written = dump_observability(artifact_root(), item.nodeid)
    except Exception as exc:  # never mask the real failure
        item.add_report_section(
            "teardown", "observability", f"artifact dump failed: {exc!r}"
        )
        return
    if written:
        item.add_report_section(
            "teardown",
            "observability",
            "dumped trace/provenance artifacts:\n"
            + "\n".join(f"  {path}" for path in written),
        )
