"""Integration: the hot-path overhaul must be semantically invisible.

Replaying the same workload with ``hot_path=True`` and ``hot_path=False``
(pre-overhaul behaviour: eager heap zeroing, no fast path, no
marshalling/encode caches) must yield byte-identical routing outcomes
and the same per-extension execution statistics on both daemons.
"""

import pytest

from repro.bgp.roa import make_roas_for_prefixes
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, origins_of


def _observe(implementation, feature, routes, roas, hot_path, engine="jit"):
    harness = ConvergenceHarness(
        implementation,
        feature,
        "extension",
        routes,
        roas,
        engine=engine,
        hot_path=hot_path,
    )
    harness.run()
    adj_out = {
        str(route.prefix) for route in harness.dut.loc_rib.routes()
    }
    return {
        "prefixes": set(harness.collector.prefixes),
        "withdrawn": set(harness.collector.withdrawn),
        "updates": harness.collector.updates,
        "loc_rib": adj_out,
        "stats": harness.extension_stats(),
        "fallbacks": harness.dut.vmm.fallbacks,
    }


class TestHotPathSemantics:
    @pytest.mark.parametrize("implementation", ["frr", "bird"])
    @pytest.mark.parametrize("feature", ["route_reflection", "origin_validation"])
    def test_hot_path_arms_identical(self, implementation, feature):
        routes = RibGenerator(n_routes=90, seed=47).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=47)
        fast = _observe(implementation, feature, routes, roas, hot_path=True)
        slow = _observe(implementation, feature, routes, roas, hot_path=False)
        assert fast == slow
        assert fast["fallbacks"] == 0

    @pytest.mark.parametrize("implementation", ["frr", "bird"])
    def test_hot_path_arms_identical_interp(self, implementation):
        routes = RibGenerator(n_routes=40, seed=48).generate()
        fast = _observe(
            implementation, "route_reflection", routes, None, True, engine="interp"
        )
        slow = _observe(
            implementation, "route_reflection", routes, None, False, engine="interp"
        )
        assert fast == slow
