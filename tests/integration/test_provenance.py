"""Integration: provenance across the full update path.

The same bytecode must produce the same causal chain on both hosts —
``xbgp explain`` is only trustworthy if the story it tells does not
depend on which implementation runs the extension.  Spans must follow
a route across simulated links, and when the circuit breaker skips a
quarantined extension the explain output must attribute the native
fallback to the breaker, not to the extension.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.core import Manifest, VmmConfig
from repro.frr import FrrDaemon
from repro.sim.harness import build_explain_scenario
from repro.telemetry import QuarantinePolicy

PREFIX = Prefix.parse("198.51.100.0/24")


def normalized_stories(tracker, prefix):
    """Stories stripped of everything implementation- or run-specific:
    what remains is the causal chain itself."""
    stories = []
    for story in tracker.stories(prefix):
        stories.append(
            {
                "peer": story["peer"],
                "session": story["session"],
                "events": story["events"],
            }
        )
    return stories


class TestCrossImplementation:
    @pytest.mark.parametrize("engine", ["jit", "interp"])
    def test_same_bytecode_same_causal_chain(self, engine):
        chains = {}
        for implementation in ("frr", "bird"):
            network, up, dut, down = build_explain_scenario(
                implementation, PREFIX, engine=engine
            )
            chains[implementation] = normalized_stories(dut.provenance, PREFIX)
        assert chains["frr"], "no story recorded on the FRR DUT"
        assert chains["frr"] == chains["bird"]

    def test_chain_covers_the_full_update_path(self):
        _, _, dut, _ = build_explain_scenario("frr", PREFIX)
        (story,) = dut.provenance.stories(PREFIX)
        ops = [event["op"] for event in story["events"]]
        # Import filter ran, decision decided, RIB changed, export ran:
        # the chain reaches every layer.
        assert "extension" in ops
        assert "decision" in ops
        assert "rib" in ops
        assert "export" in ops
        assert ops.index("decision") < ops.index("rib") < ops.index("export")
        # The RR extension's attribute stamping is attributed to it.
        set_attrs = [
            event for event in story["events"] if event["op"] == "set_attr"
        ]
        assert {event["attr"] for event in set_attrs} == {
            "ORIGINATOR_ID", "CLUSTER_LIST",
        }
        assert all(event["extension"] == "rr_export" for event in set_attrs)

    def test_rendered_explain_matches_across_hosts(self):
        rendered = {}
        for implementation in ("frr", "bird"):
            _, _, dut, _ = build_explain_scenario(implementation, PREFIX)
            text = dut.provenance.render_explain(PREFIX)
            # Scrub the header line (names the implementation).
            rendered[implementation] = text.splitlines()[1:]
        assert rendered["frr"] == rendered["bird"]


class TestSpanPropagation:
    def test_one_trace_spans_three_routers(self):
        _, up, dut, down = build_explain_scenario("frr", PREFIX)
        root = up.provenance.spans.spans("originate")[0]
        for daemon in (up, dut, down):
            spans = daemon.provenance.spans.spans()
            assert spans, daemon.provenance.router
            assert {span["trace"] for span in spans} == {root["trace"]}

    def test_downstream_update_parented_under_dut_export(self):
        _, _, dut, down = build_explain_scenario("frr", PREFIX)
        (update_span,) = down.provenance.spans.spans("update")
        (export_span,) = [
            span
            for span in dut.provenance.spans.spans("export")
            if span["prefix"] == str(PREFIX)
        ]
        assert update_span["parent"] == export_span["span"]

    def test_story_trace_ids_link_the_routers(self):
        _, up, dut, down = build_explain_scenario("frr", PREFIX)
        origin_trace = up.provenance.stories(PREFIX)[0]["trace"]
        assert dut.provenance.stories(PREFIX)[0]["trace"] == origin_trace
        assert down.provenance.stories(PREFIX)[0]["trace"] == origin_trace


#: Dereferences NULL: faults in the sandbox at run time.
CRASHING = """
u64 crash(u64 args) {
    return *(u64 *)(0);
}
"""


def crasher_manifest():
    return Manifest(
        name="crasher",
        codes=[
            {
                "name": "crasher",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": [],
                "source": CRASHING,
            }
        ],
    )


def feed(daemon, prefix):
    update = UpdateMessage(
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65100])),
            make_next_hop(parse_ipv4("10.0.0.9")),
        ],
        nlri=[prefix],
    )
    daemon.receive_message("10.0.0.9", update)


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestQuarantineAttribution:
    """explain must blame the breaker, not the extension, once the
    quarantine opens — and the faulting runs before that must carry the
    error that opened it."""

    def make_daemon(self, daemon_cls):
        config = VmmConfig(quarantine=QuarantinePolicy(error_threshold=2))
        daemon = daemon_cls(
            asn=65001, router_id="1.1.1.1", vmm_config=config, provenance=True
        )
        daemon.attach_manifest(crasher_manifest())
        daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
        daemon._established[parse_ipv4("10.0.0.9")] = True
        return daemon

    def test_pre_quarantine_faults_attributed_to_extension(self, daemon_cls):
        daemon = self.make_daemon(daemon_cls)
        first = Prefix.parse("10.0.0.0/24")
        feed(daemon, first)
        (story,) = daemon.provenance.stories(first)
        fallbacks = [
            event for event in story["events"] if event["op"] == "fallback"
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0]["extension"] == "crasher"
        assert "skipped" not in daemon.provenance.render_explain(first)

    def test_post_quarantine_skip_attributed_to_breaker(self, daemon_cls):
        daemon = self.make_daemon(daemon_cls)
        prefixes = [Prefix(0x0A000000 + (index << 8), 24) for index in range(4)]
        for prefix in prefixes:
            feed(daemon, prefix)
        assert daemon.vmm.quarantined_codes() == ["crasher"]
        # The route processed after the breaker opened: its story shows
        # the skip, credited to the circuit breaker.
        (story,) = daemon.provenance.stories(prefixes[-1])
        (skip,) = [event for event in story["events"] if event["op"] == "skip"]
        assert skip["by"] == "circuit-breaker"
        assert skip["extension"] == "crasher"
        assert skip["reason"] == "quarantined"
        text = daemon.provenance.render_explain(prefixes[-1])
        assert "skipped by circuit-breaker" in text
        assert "FAULTED" not in text  # no fault happened on this route

    def test_route_still_converges_with_full_story(self, daemon_cls):
        daemon = self.make_daemon(daemon_cls)
        prefixes = [Prefix(0x0A000000 + (index << 8), 24) for index in range(4)]
        for prefix in prefixes:
            feed(daemon, prefix)
        for prefix in prefixes:
            assert daemon.loc_rib.lookup(prefix) is not None
            (story,) = daemon.provenance.stories(prefix)
            ops = [event["op"] for event in story["events"]]
            assert "rib" in ops  # the chain still reaches installation


class TestFailureArtifacts:
    """The conftest failure hook: daemons created in a test get their
    trace ring and provenance dumped when the test fails."""

    def test_dump_writes_trace_and_provenance(self, tmp_path):
        import json

        from conftest import dump_observability

        daemon = FrrDaemon(asn=65001, router_id="1.1.1.1", provenance=True)
        daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
        daemon._established[parse_ipv4("10.0.0.9")] = True
        feed(daemon, PREFIX)
        written = dump_observability(
            str(tmp_path), "tests/integration/test_x.py::TestY::test_z[frr]"
        )
        names = sorted(path.rsplit("-", 1)[1] for path in written)
        assert names == ["provenance.jsonl", "trace.jsonl"]
        # The sanitized test id names the directory.
        assert all("test_x.py_TestY_test_z_frr_" in path for path in written)
        provenance = [
            json.loads(line)
            for path in written
            if path.endswith("provenance.jsonl")
            for line in open(path)
        ]
        assert {record["type"] for record in provenance} == {
            "story", "span", "convergence",
        }
        assert any(
            record.get("prefix") == str(PREFIX)
            for record in provenance
            if record["type"] == "story"
        )

    def test_daemons_without_instrumentation_write_nothing(self, tmp_path):
        from conftest import _LIVE, dump_observability

        _LIVE.clear()
        FrrDaemon(
            asn=65001, router_id="1.1.1.1", vmm_config=VmmConfig(telemetry=False)
        )
        written = dump_observability(str(tmp_path), "some::test")
        assert written == []
        assert not (tmp_path / "some_test").exists()
