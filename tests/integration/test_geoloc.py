"""Integration: the GeoLoc program (Fig. 2) end-to-end on both hosts."""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import decode_geoloc
from repro.bgp.constants import AttrTypeCode
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import geoloc
from repro.sim import Network

PREFIX = Prefix.parse("203.0.113.0/24")

BRUSSELS = (50.8503, 4.3517)
SYDNEY = (-33.8688, 151.2093)


def build(dut_cls, dut_coord, feeder_coord=None, max_km=20000):
    """eBGP feeder -> DUT (GeoLoc program) -> iBGP peer."""
    network = Network()
    feeder = BirdDaemon(asn=65100, router_id="9.9.9.9")
    dut = dut_cls(
        asn=65001,
        router_id="1.1.1.1",
        xtra={"coord": geoloc.coord_bytes(*dut_coord)},
    )
    peer = BirdDaemon(asn=65001, router_id="2.2.2.2")
    dut.attach_manifest(geoloc.build_manifest(max_distance_km=max_km))
    network.add_router("feeder", feeder)
    network.add_router("dut", dut)
    network.add_router("peer", peer)
    network.connect("feeder", "10.0.0.9", "dut", "10.0.0.1")
    network.connect("dut", "10.0.0.1", "peer", "10.0.0.2")
    if feeder_coord:
        # Feeder also runs GeoLoc (tags at its own location): the DUT
        # then sees a remote GeoLoc rather than stamping its own.
        feeder.attach_manifest(geoloc.build_manifest(max_distance_km=max_km))
        feeder.xtra["coord"] = geoloc.coord_bytes(*feeder_coord)
    network.establish_all()
    return network, feeder, dut, peer


@pytest.mark.parametrize("dut_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestGeoLoc:
    def test_attribute_stamped_and_propagated_over_ibgp(self, dut_cls):
        network, feeder, dut, peer = build(dut_cls, BRUSSELS)
        feeder.originate(PREFIX)
        network.run()
        route = peer.loc_rib.lookup(PREFIX)
        assert route is not None
        attribute = route.attribute(AttrTypeCode.GEOLOC)
        assert attribute is not None
        latitude, longitude = decode_geoloc(attribute)
        assert latitude == pytest.approx(BRUSSELS[0], abs=1e-6)
        assert longitude == pytest.approx(BRUSSELS[1], abs=1e-6)
        assert dut.vmm.fallbacks == 0

    def _edge_core(self, dut_cls, max_km):
        """external (eBGP) -> Sydney edge -> Brussels core, one AS.

        The edge tags routes with *its* location; GeoLoc then travels
        over iBGP to the core, whose import filter measures distance.
        """
        network = Network()
        external = BirdDaemon(asn=65300, router_id="8.8.8.8")
        edge = BirdDaemon(
            asn=65001,
            router_id="3.3.3.3",
            xtra={"coord": geoloc.coord_bytes(*SYDNEY)},
        )
        core = dut_cls(
            asn=65001,
            router_id="1.1.1.1",
            xtra={"coord": geoloc.coord_bytes(*BRUSSELS)},
        )
        manifest = geoloc.build_manifest(max_distance_km=max_km)
        edge.attach_manifest(manifest)
        core.attach_manifest(geoloc.build_manifest(max_distance_km=max_km))
        network.add_router("ext", external)
        network.add_router("edge", edge)
        network.add_router("core", core)
        network.connect("ext", "10.0.3.1", "edge", "10.0.3.2")
        network.connect("edge", "10.0.3.2", "core", "10.0.0.1")
        network.establish_all()
        external.originate(PREFIX)
        network.run()
        return network, external, edge, core

    def test_existing_geoloc_not_overwritten(self, dut_cls):
        # The Sydney edge tags the route; the Brussels core receives it
        # via iBGP and must keep the Sydney coordinates.
        _, _, _, core = self._edge_core(dut_cls, max_km=20000)
        route = core.loc_rib.lookup(PREFIX)
        assert route is not None
        latitude, _ = decode_geoloc(route.attribute(AttrTypeCode.GEOLOC))
        assert latitude == pytest.approx(SYDNEY[0], abs=1e-6)

    def test_far_away_route_rejected(self, dut_cls):
        # Brussels-Sydney is ~16700 km: a 5000 km threshold rejects.
        _, _, _, core = self._edge_core(dut_cls, max_km=5000)
        assert core.loc_rib.lookup(PREFIX) is None
        assert core.stats["import_rejected"] >= 1

    def test_geoloc_stripped_toward_ebgp(self, dut_cls):
        network, feeder, dut, peer = build(dut_cls, BRUSSELS)
        external = BirdDaemon(asn=65400, router_id="7.7.7.7")
        network.add_router("ext", external)
        network.connect("dut", "10.0.4.1", "ext", "10.0.4.2")
        network.establish_all()
        feeder.originate(PREFIX)
        network.run()
        route = external.loc_rib.lookup(PREFIX)
        assert route is not None
        assert route.attribute(AttrTypeCode.GEOLOC) is None

    def test_same_bytecode_identical_across_hosts(self, dut_cls):
        # The attribute bytes the iBGP peer receives must be identical
        # regardless of which host ran the bytecode.
        results = {}
        for cls in (FrrDaemon, BirdDaemon):
            network, feeder, dut, peer = build(cls, BRUSSELS)
            feeder.originate(PREFIX)
            network.run()
            route = peer.loc_rib.lookup(PREFIX)
            results[cls.__name__] = route.attribute(AttrTypeCode.GEOLOC).value
        assert results["FrrDaemon"] == results["BirdDaemon"]
