"""Integration: §3.3 — valley-free data-center filtering (Fig. 5)."""

import pytest

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.sim.fabrics import CLOS_LINKS, SAME_AS, UNIQUE_AS, build_clos, up_edges

INTERNAL = Prefix.parse("192.168.13.0/24")  # attached below L13
EXTERNAL = Prefix.parse("8.8.8.0/24")  # transit prefix


def with_transit(config, implementation="mixed"):
    network = build_clos(config, implementation=implementation)
    transit = BirdDaemon(asn=65500, router_id="9.9.9.9")
    network.add_router("EXT", transit)
    network.connect("EXT", "10.30.0.1", "S1", "10.30.0.2")
    network.connect("EXT", "10.30.1.1", "S2", "10.30.1.2")
    network.establish_all()
    network.router("L13").originate(INTERNAL)
    transit.originate(EXTERNAL)
    network.run()
    return network


def double_failure(network):
    network.fail_link("L10", "S1")
    network.fail_link("L13", "S2")
    network.fail_link("EXT", "S2")


def reaches(network, router, prefix):
    return network.router(router).loc_rib.lookup(prefix) is not None


class TestTopologyHelpers:
    def test_clos_has_no_same_level_links(self):
        levels = {"S": 2, "L": 1, "T": 0}
        for a, b in CLOS_LINKS:
            assert levels[a[0]] != levels[b[0]]

    def test_up_edges_oriented_low_to_high(self):
        for low, high in up_edges(UNIQUE_AS):
            assert low != high

    def test_same_as_shares_spine_asn(self):
        assert SAME_AS["S1"] == SAME_AS["S2"]
        assert SAME_AS["L10"] == SAME_AS["L11"]
        assert len(set(UNIQUE_AS.values())) == len(UNIQUE_AS)


class TestBaseline:
    def test_full_fabric_reachability(self):
        network = with_transit("xbgp")
        for router in ("T20", "T21", "T22", "T23", "L10", "S1", "S2"):
            assert reaches(network, router, INTERNAL), router
            assert reaches(network, router, EXTERNAL), router

    def test_no_valley_paths_for_transit_under_xbgp(self):
        network = with_transit("xbgp")
        # Every router's traffic path to the transit prefix must be
        # valley-free: never an up move after a down move.
        pairs = set(up_edges(UNIQUE_AS))
        for name in UNIQUE_AS:
            route = network.router(name).loc_rib.lookup(EXTERNAL)
            assert route is not None
            hops = [UNIQUE_AS[name]] + list(route.as_path().asn_iter())
            seen_down = False
            for left, right in zip(hops, hops[1:]):
                if (right, left) in pairs:
                    seen_down = True
                assert not ((left, right) in pairs and seen_down), (name, hops)


class TestDoubleFailure:
    def test_same_as_partitions(self):
        network = with_transit("same_as")
        double_failure(network)
        assert not reaches(network, "L10", INTERNAL)
        assert not reaches(network, "S2", EXTERNAL)

    def test_unique_as_survives_but_valleys_transit(self):
        network = with_transit("unique_as")
        double_failure(network)
        assert reaches(network, "L10", INTERNAL)
        # Without protection S2 reaches transit through a valley.
        assert reaches(network, "S2", EXTERNAL)

    def test_xbgp_rescues_internal_blocks_transit_valley(self):
        network = with_transit("xbgp")
        double_failure(network)
        # The paper's rescue path exists for internal destinations...
        route = network.router("L10").loc_rib.lookup(INTERNAL)
        assert route is not None
        path = list(route.as_path().asn_iter())
        pairs = set(up_edges(UNIQUE_AS))
        assert any((l, r) in pairs for l, r in zip(path, path[1:])), (
            "rescue must actually use a valley"
        )
        # ...but transit valleys stay forbidden.
        assert not reaches(network, "S2", EXTERNAL)

    @pytest.mark.parametrize("implementation", ["frr", "bird", "mixed"])
    def test_scenario_independent_of_host(self, implementation):
        network = with_transit("xbgp", implementation=implementation)
        double_failure(network)
        assert reaches(network, "L10", INTERNAL)
        assert not reaches(network, "S2", EXTERNAL)

    def test_data_plane_follows_rescue_path(self):
        # Not just RIB state: actual forwarding from L10 to the
        # internal prefix must traverse the S2 -> (L11|L12) -> S1 valley
        # and be delivered at L13.
        network = with_transit("xbgp")
        double_failure(network)
        outcome, hops = network.trace("L10", "192.168.13.1")
        assert outcome == "delivered"
        assert hops[0] == "L10" and hops[-1] == "L13"
        assert hops[1] == "S2" and "S1" in hops, hops

    def test_data_plane_transit_blackholed_at_s2(self):
        network = with_transit("xbgp")
        double_failure(network)
        outcome, _ = network.trace("S2", "8.8.8.8")
        assert outcome == "unreachable"

    def test_recovery_after_restore(self):
        network = with_transit("xbgp")
        double_failure(network)
        network.restore_link("L13", "S2")
        network.restore_link("L10", "S1")
        network.restore_link("EXT", "S2")
        route = network.router("L10").loc_rib.lookup(INTERNAL)
        assert route is not None
        # Back to the direct (non-valley) path.
        assert route.as_path_length() == 2
        assert reaches(network, "S2", EXTERNAL)
