"""End-to-end check that the fuzzer actually catches bugs.

Plants a deliberate cache-invalidation bug — ``Neighbor.__setattr__``
keeps the stale ``pack_peer_info`` memo across field writes, so the
fast path serves outdated peer-info bytes — and asserts the host
oracle campaign finds it, ddmin shrinks the event stream, and the
persisted corpus entry reproduces the divergence (with the plant) and
replays clean (without it).  This is the acceptance test for the whole
find → dedup → minimize → persist → replay loop.
"""

import pytest

from repro.bgp.peer import Neighbor
from repro.fuzz.corpus import iter_entries, load_entry, replay_entry
from repro.fuzz.runner import FuzzRunner

PLANT_SIGNATURE = "host:fast-legacy:frr:downstream:route_reflector"


@pytest.fixture
def stale_peer_cache(monkeypatch):
    """Sabotage Neighbor's write-invalidation of the peer-info memo."""
    original = Neighbor.__setattr__

    def broken(self, name, value):
        packed = getattr(self, "_packed_info", None)
        original(self, name, value)
        if name != "_packed_info" and packed is not None:
            object.__setattr__(self, "_packed_info", packed)

    monkeypatch.setattr(Neighbor, "__setattr__", broken)


def _campaign(corpus_dir):
    return FuzzRunner(
        seed=2,
        iterations=6,
        oracles=("host",),
        corpus_dir=corpus_dir,
        minimize=True,
        max_minimize_calls=60,
    ).run()


def test_planted_divergence_is_caught_minimized_and_reproducible(
    stale_peer_cache, tmp_path
):
    report = _campaign(tmp_path)

    assert not report["clean"]
    signatures = [d["signature"] for d in report["divergences"]]
    assert PLANT_SIGNATURE in signatures
    finding = next(d for d in report["divergences"] if d["signature"] == PLANT_SIGNATURE)
    # ddmin shrank the event stream (9 events at generation time).
    assert finding["minimized_length"] < finding["original_length"]

    # The persisted entry reproduces the same divergence while the
    # plant is active...
    paths = list(iter_entries(tmp_path))
    assert paths
    entry = load_entry(next(p for p in paths if p.name == finding["corpus_file"].split("/")[-1]))
    replayed = replay_entry(entry)
    assert replayed is not None
    assert replayed.signature == PLANT_SIGNATURE


def test_planted_entry_replays_clean_without_plant(stale_peer_cache, tmp_path, monkeypatch):
    report = _campaign(tmp_path)
    finding = next(d for d in report["divergences"] if d["signature"] == PLANT_SIGNATURE)
    path = next(
        p for p in iter_entries(tmp_path) if p.name == finding["corpus_file"].split("/")[-1]
    )
    entry = load_entry(path)
    # Heal the plant: replay on the real implementation must be clean —
    # exactly the contract the checked-in corpus relies on.
    monkeypatch.undo()
    assert replay_entry(entry) is None


def test_clean_campaign_without_plant():
    # Same seed and budget, unbroken tree: the campaign reports clean,
    # i.e. the finding above is the plant's doing, not background noise.
    report = FuzzRunner(seed=2, iterations=6, oracles=("host",)).run()
    assert report["clean"]
    assert report["iterations_run"] == 6
