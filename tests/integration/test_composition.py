"""Integration: multiple xBGP programs composing on one daemon.

§2.1: "Different extension codes can be attached to the same insertion
point, and the manifest defines in which order they are executed" and
"orthogonal extensions will not interfere with each other" (isolated
memory spaces).  These tests load several of the paper's programs
simultaneously and check both composition and isolation.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import AttrTypeCode, Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bgp.roa import Roa
from repro.bird import BirdDaemon
from repro.core.insertion_points import InsertionPoint
from repro.frr import FrrDaemon
from repro.plugins import (
    conditional_default,
    geoloc,
    origin_validation,
)

PREFIX = Prefix.parse("198.51.100.0/24")
TRIGGER = Prefix.parse("192.0.2.0/24")


def make_daemon(daemon_cls):
    daemon = daemon_cls(
        asn=65001,
        router_id="1.1.1.1",
        xtra={"coord": geoloc.coord_bytes(50.85, 4.35)},
    )
    daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
    daemon._established[parse_ipv4("10.0.0.9")] = True
    return daemon


def announce(daemon, prefix, coord=None):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence([65100])),
        make_next_hop(parse_ipv4("10.0.0.9")),
    ]
    if coord:
        attrs.append(make_geoloc(*coord))
    daemon.receive_message("10.0.0.9", UpdateMessage(attributes=attrs, nlri=[prefix]))


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestComposition:
    def test_three_programs_together(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        roas = [Roa(PREFIX, 65100)]
        daemon.attach_manifest(geoloc.build_manifest(max_distance_km=50000))
        daemon.attach_manifest(origin_validation.build_manifest(roas))
        daemon.attach_manifest(conditional_default.build_manifest(TRIGGER))

        announce(daemon, PREFIX)
        announce(daemon, TRIGGER)

        # GeoLoc stamped both routes (eBGP receive code).
        route = daemon.loc_rib.lookup(PREFIX)
        assert route.attribute(AttrTypeCode.GEOLOC) is not None
        # Origin validation counted both.
        chain = daemon.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
        rov_item = next(i for i in chain if i.code.name == "rov_import")
        counters = origin_validation.read_validity_counters(rov_item.state)
        assert sum(counters.values()) == 2
        assert counters["VALID"] == 1  # PREFIX has a ROA; TRIGGER doesn't
        # Conditional default fired on the trigger.
        assert daemon.loc_rib.lookup(Prefix.parse("0.0.0.0/0")) is not None
        assert daemon.vmm.fallbacks == 0

    def test_chain_order_follows_attach_and_seq(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(origin_validation.build_manifest([Roa(PREFIX, 65100)]))
        daemon.attach_manifest(conditional_default.build_manifest(TRIGGER))
        names = daemon.vmm.attached_codes(InsertionPoint.BGP_INBOUND_FILTER)
        assert names == ["rov_import", "watch_trigger"]

    def test_shared_memory_isolated_between_programs(self, daemon_cls):
        # Both rov_import and watch_trigger use shm key 1; each must see
        # its own counter space (different ProgramStates).
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(origin_validation.build_manifest([Roa(PREFIX, 65100)]))
        daemon.attach_manifest(conditional_default.build_manifest(TRIGGER))
        announce(daemon, PREFIX)
        announce(daemon, TRIGGER)
        chain = daemon.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
        states = {item.code.name: item.state for item in chain}
        assert states["rov_import"] is not states["watch_trigger"]
        counters = origin_validation.read_validity_counters(states["rov_import"])
        assert sum(counters.values()) == 2  # not clobbered by the other program

    def test_foreign_shared_region_unreachable(self, daemon_cls):
        # A program cannot even address another program's shared region:
        # both regions sit at the same virtual base in *separate* VMs.
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(origin_validation.build_manifest([Roa(PREFIX, 65100)]))
        chain = daemon.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
        vm = chain[0].vm
        regions = vm.memory._regions  # noqa: SLF001 - inspecting the sandbox
        shm_regions = [r for r in regions if r.label == "shm"]
        assert len(shm_regions) == 1
        assert shm_regions[0] is chain[0].state.shared
