"""Tier-1 replay of the checked-in fuzz regression corpus.

Every entry in ``tests/fuzz_corpus/`` is a minimized reproduction of a
divergence the differential fuzzer once found.  Replay is deterministic
(the case is stored verbatim — no random generation happens here) and
must come back clean: a non-``None`` replay means the originally fixed
bug regressed.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    CORPUS_VERSION,
    entry_filename,
    iter_entries,
    load_entry,
    replay_entry,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"

ENTRIES = list(iter_entries(CORPUS_DIR))


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    entry = load_entry(path)
    divergence = replay_entry(entry)
    assert divergence is None, (
        f"regression: {entry['signature']} (seed {entry['seed']}) "
        f"diverges again: {divergence.detail if divergence else ''}"
    )


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_hygiene(path):
    entry = load_entry(path)
    assert entry["version"] == CORPUS_VERSION
    for field in ("oracle", "signature", "detail", "seed", "case"):
        assert field in entry, f"{path.name} missing {field!r}"
    # Filenames are derived from oracle + signature hash so entries
    # never collide and renames are detectable.
    assert path.name == entry_filename(entry)


def test_known_regressions_present():
    # The two founding entries: the split_stream mid-batch loss and the
    # stale peer-info cache sentinel.  Their signatures document what
    # the corpus protects; removing one should be a deliberate act.
    signatures = {load_entry(path)["signature"] for path in ENTRIES}
    assert "codec:reassembly" in signatures
    assert "host:fast-legacy:frr:downstream:route_reflector" in signatures
