"""Integration: convergence dynamics in meshier topologies.

The simulator plus two daemon implementations must converge (and
re-converge after failures) in topologies with redundant paths — the
property the data-center experiment relies on.
"""

import itertools

import pytest

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.sim import Network

PREFIX = Prefix.parse("203.0.113.0/24")


def build_ring(size=5, mixed=True):
    """A ring of eBGP routers; every router should reach every prefix."""
    network = Network()
    for index in range(size):
        cls = (FrrDaemon, BirdDaemon)[index % 2] if mixed else BirdDaemon
        network.add_router(
            f"r{index}",
            cls(asn=65001 + index, router_id=f"10.50.{index}.1"),
        )
    addresses = itertools.count(0)
    for index in range(size):
        a, b = f"r{index}", f"r{(index + 1) % size}"
        n = next(addresses)
        network.connect(a, f"10.60.{n}.1", b, f"10.60.{n}.2")
    network.establish_all()
    return network


class TestRingConvergence:
    def test_all_routers_learn_the_prefix(self):
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        for index in range(5):
            route = network.router(f"r{index}").loc_rib.lookup(PREFIX)
            assert route is not None, f"r{index}"

    def test_shortest_ring_arc_chosen(self):
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        # r1 and r4 are adjacent to r0: one-hop paths.
        assert network.router("r1").loc_rib.lookup(PREFIX).as_path_length() == 1
        assert network.router("r4").loc_rib.lookup(PREFIX).as_path_length() == 1
        # r2 is two hops away either way.
        assert network.router("r2").loc_rib.lookup(PREFIX).as_path_length() == 2

    def test_reconvergence_around_failure(self):
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        # Cut the short arc for r1.
        network.fail_link("r0", "r1")
        route = network.router("r1").loc_rib.lookup(PREFIX)
        assert route is not None
        assert route.as_path_length() == 4  # the long way round

    def test_full_partition_withdraws_everywhere(self):
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        network.fail_link("r0", "r1")
        network.fail_link("r0", "r4")
        for index in range(1, 5):
            assert network.router(f"r{index}").loc_rib.lookup(PREFIX) is None

    def test_loop_detection_terminates_convergence(self):
        # Path hunting in a ring must settle: event count is finite and
        # no AS path ever contains a duplicate AS.
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        before = network.scheduler.events_processed
        network.fail_link("r0", "r1")
        after = network.scheduler.events_processed
        assert after - before < 500  # settles quickly at this scale
        for index in range(5):
            route = network.router(f"r{index}").loc_rib.lookup(PREFIX)
            if route is not None:
                asns = list(route.as_path().asn_iter())
                assert len(asns) == len(set(asns))

    def test_data_plane_consistent_after_reconvergence(self):
        network = build_ring()
        network.router("r0").originate(PREFIX)
        network.run()
        network.fail_link("r0", "r1")
        outcome, hops = network.trace("r1", "203.0.113.1")
        assert outcome == "delivered"
        assert hops == ["r1", "r2", "r3", "r4", "r0"]
