"""Integration: the BGP_DECISION use case (closest-exit selection)."""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import closest_exit, geoloc

PREFIX = Prefix.parse("203.0.113.0/24")

BRUSSELS = (50.85, 4.35)
PARIS = (48.85, 2.35)
SYDNEY = (-33.86, 151.21)


def update(asn, next_hop, coord=None, path_extra=()):
    attrs = [
        make_origin(Origin.IGP),
        make_as_path(AsPath.from_sequence((asn,) + tuple(path_extra))),
        make_next_hop(parse_ipv4(next_hop)),
    ]
    if coord is not None:
        attrs.append(make_geoloc(*coord))
    return UpdateMessage(attributes=attrs, nlri=[PREFIX])


def build(daemon_cls, with_plugin=True):
    daemon = daemon_cls(
        asn=65001,
        router_id="1.1.1.1",
        xtra={"coord": geoloc.coord_bytes(*BRUSSELS)},
    )
    if with_plugin:
        daemon.attach_manifest(closest_exit.build_manifest())
    for address, asn in (("10.0.0.8", 65100), ("10.0.0.9", 65200)):
        daemon.add_neighbor(address, asn, lambda data: None)
        daemon._established[parse_ipv4(address)] = True
    return daemon


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestClosestExit:
    def test_overrides_as_path_length(self, daemon_cls):
        daemon = build(daemon_cls)
        # Sydney exit has the shorter path; Paris is closer to Brussels.
        daemon.receive_message("10.0.0.8", update(65100, "10.0.0.8", SYDNEY))
        daemon.receive_message(
            "10.0.0.9", update(65200, "10.0.0.9", PARIS, path_extra=(65300,))
        )
        best = daemon.loc_rib.lookup(PREFIX)
        assert best.source.peer_asn == 65200
        assert daemon.vmm.fallbacks == 0

    def test_without_plugin_native_ranking_wins(self, daemon_cls):
        daemon = build(daemon_cls, with_plugin=False)
        daemon.receive_message("10.0.0.8", update(65100, "10.0.0.8", SYDNEY))
        daemon.receive_message(
            "10.0.0.9", update(65200, "10.0.0.9", PARIS, path_extra=(65300,))
        )
        assert daemon.loc_rib.lookup(PREFIX).source.peer_asn == 65100

    def test_falls_through_without_geoloc(self, daemon_cls):
        daemon = build(daemon_cls)
        daemon.receive_message("10.0.0.8", update(65100, "10.0.0.8"))
        daemon.receive_message(
            "10.0.0.9", update(65200, "10.0.0.9", path_extra=(65300,))
        )
        # No coordinates anywhere: native ranking (shorter path).
        assert daemon.loc_rib.lookup(PREFIX).source.peer_asn == 65100

    def test_mixed_presence_falls_through(self, daemon_cls):
        daemon = build(daemon_cls)
        daemon.receive_message("10.0.0.8", update(65100, "10.0.0.8", SYDNEY))
        daemon.receive_message(
            "10.0.0.9", update(65200, "10.0.0.9", path_extra=(65300,))
        )
        assert daemon.loc_rib.lookup(PREFIX).source.peer_asn == 65100

    def test_same_choice_on_both_hosts(self, daemon_cls):
        choices = set()
        for cls in (FrrDaemon, BirdDaemon):
            daemon = build(cls)
            daemon.receive_message("10.0.0.8", update(65100, "10.0.0.8", SYDNEY))
            daemon.receive_message("10.0.0.9", update(65200, "10.0.0.9", PARIS))
            choices.add(daemon.loc_rib.lookup(PREFIX).source.peer_asn)
        assert choices == {65200}
