"""Integration: §3.2 — route reflection as extension code.

The headline equivalence: a host running the RR bytecode produces the
same reflected routes — ORIGINATOR_ID and CLUSTER_LIST included — as a
host running its native RFC 4456 implementation.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.constants import AttrTypeCode
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import route_reflector
from repro.sim import Network
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator

PREFIX = Prefix.parse("198.51.100.0/24")


def build_rr(dut_cls, mode):
    """client A -> RR DUT -> client B, all iBGP."""
    network = Network()
    up = BirdDaemon(asn=65001, router_id="10.0.1.1")
    dut = dut_cls(asn=65001, router_id="10.0.0.1", route_reflector=mode)
    down = BirdDaemon(asn=65001, router_id="10.0.2.2")
    if mode == "extension":
        dut.attach_manifest(route_reflector.build_manifest())
    network.add_router("up", up)
    network.add_router("dut", dut)
    network.add_router("down", down)
    network.connect("up", "10.0.1.1", "dut", "10.0.0.1")
    network.connect("dut", "10.0.0.1", "down", "10.0.2.2")
    network.neighbor_config("dut", "10.0.1.1").rr_client = True
    network.neighbor_config("dut", "10.0.2.2").rr_client = True
    network.establish_all()
    return network, up, dut, down


@pytest.mark.parametrize("dut_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestEquivalence:
    def test_reflected_attributes_match_native(self, dut_cls):
        snapshots = {}
        for mode in ("native", "extension"):
            network, up, dut, down = build_rr(dut_cls, mode)
            up.originate(PREFIX)
            network.run()
            route = down.loc_rib.lookup(PREFIX)
            assert route is not None, f"{mode}: not reflected"
            snapshots[mode] = sorted(
                (a.type_code, a.value) for a in route.attribute_list()
            )
        assert snapshots["native"] == snapshots["extension"]

    def test_originator_id_is_client_router_id(self, dut_cls):
        network, up, dut, down = build_rr(dut_cls, "extension")
        up.originate(PREFIX)
        network.run()
        route = down.loc_rib.lookup(PREFIX)
        from repro.bgp.prefix import parse_ipv4

        assert route.attribute(AttrTypeCode.ORIGINATOR_ID).as_u32() == parse_ipv4(
            "10.0.1.1"
        )

    def test_cluster_list_prepended(self, dut_cls):
        network, up, dut, down = build_rr(dut_cls, "extension")
        up.originate(PREFIX)
        network.run()
        route = down.loc_rib.lookup(PREFIX)
        from repro.bgp.prefix import parse_ipv4

        assert route.attribute(AttrTypeCode.CLUSTER_LIST).as_cluster_list() == (
            parse_ipv4("10.0.0.1"),
        )

    def test_originator_loop_rejected_on_import(self, dut_cls):
        # A route whose ORIGINATOR_ID equals the DUT's router id came
        # from the DUT originally: the extension must drop it.
        from repro.bgp.attributes import (
            make_as_path,
            make_next_hop,
            make_origin,
            make_originator_id,
        )
        from repro.bgp.aspath import AsPath
        from repro.bgp.constants import Origin
        from repro.bgp.messages import UpdateMessage
        from repro.bgp.prefix import parse_ipv4

        network, up, dut, down = build_rr(dut_cls, "extension")
        update = UpdateMessage(
            attributes=[
                make_origin(Origin.IGP),
                make_as_path(AsPath()),
                make_next_hop(parse_ipv4("10.0.1.1")),
                make_originator_id(parse_ipv4("10.0.0.1")),  # the DUT itself
            ],
            nlri=[PREFIX],
        )
        dut.receive_message("10.0.1.1", update)
        assert dut.loc_rib.lookup(PREFIX) is None
        assert dut.stats["import_rejected"] == 1

    def test_cluster_loop_rejected_on_import(self, dut_cls):
        from repro.bgp.attributes import (
            make_as_path,
            make_cluster_list,
            make_next_hop,
            make_origin,
        )
        from repro.bgp.aspath import AsPath
        from repro.bgp.constants import Origin
        from repro.bgp.messages import UpdateMessage
        from repro.bgp.prefix import parse_ipv4

        network, up, dut, down = build_rr(dut_cls, "extension")
        update = UpdateMessage(
            attributes=[
                make_origin(Origin.IGP),
                make_as_path(AsPath()),
                make_next_hop(parse_ipv4("10.0.1.1")),
                make_cluster_list([parse_ipv4("10.0.0.1")]),  # our cluster
            ],
            nlri=[PREFIX],
        )
        dut.receive_message("10.0.1.1", update)
        assert dut.loc_rib.lookup(PREFIX) is None

    def test_nonclient_to_nonclient_not_reflected(self, dut_cls):
        network, up, dut, down = build_rr(dut_cls, "extension")
        network.neighbor_config("dut", "10.0.1.1").rr_client = False
        network.neighbor_config("dut", "10.0.2.2").rr_client = False
        up.originate(PREFIX)
        network.run()
        assert down.loc_rib.lookup(PREFIX) is None

    def test_client_route_reflected_to_nonclient(self, dut_cls):
        network, up, dut, down = build_rr(dut_cls, "extension")
        network.neighbor_config("dut", "10.0.2.2").rr_client = False
        up.originate(PREFIX)  # up is a client
        network.run()
        assert down.loc_rib.lookup(PREFIX) is not None


class TestAtScale:
    @pytest.mark.parametrize("implementation", ["frr", "bird"])
    def test_full_table_reflection_both_modes(self, implementation):
        routes = RibGenerator(n_routes=400, seed=11).generate()
        collected = {}
        for mode in ("native", "extension"):
            harness = ConvergenceHarness(implementation, "route_reflection", mode, routes)
            harness.run()
            collected[mode] = harness.collector.prefixes
            assert len(collected[mode]) == 400
        assert collected["native"] == collected["extension"]

    def test_extension_runs_are_counted(self):
        routes = RibGenerator(n_routes=50, seed=11).generate()
        harness = ConvergenceHarness("frr", "route_reflection", "extension", routes)
        harness.run()
        stats = harness.extension_stats()
        assert stats["rr_import"]["executions"] == 50
        assert stats["rr_import"]["errors"] == 0
        assert stats["rr_export"]["errors"] == 0
