"""Integration: the vendor-neutrality claim at scale.

The same xBGP bytecode, attached to PyFRR and PyBIRD, must make both
daemons converge to identical routing state on identical inputs —
despite their different internal representations.
"""

import pytest

from repro.bgp.prefix import parse_ipv4
from repro.bgp.roa import make_roas_for_prefixes
from repro.bird import BirdDaemon
from repro.core.insertion_points import InsertionPoint
from repro.frr import FrrDaemon
from repro.plugins import geoloc, igp_filter, origin_validation, route_reflector
from repro.workload import RibGenerator, build_updates, origins_of


def feed_table(daemon, routes, session="ebgp"):
    daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
    daemon._established[parse_ipv4("10.0.0.9")] = True
    daemon.neighbors[parse_ipv4("10.0.0.9")].established = True
    updates = build_updates(
        routes,
        next_hop=parse_ipv4("10.0.0.9"),
        session=session,
        sender_asn=65100 if session == "ebgp" else None,
    )
    for update in updates:
        daemon.receive_message("10.0.0.9", update)


def snapshot(daemon):
    return {
        prefix: [(a.type_code, a.flags, a.value) for a in attrs]
        for prefix, attrs in daemon.loc_rib_snapshot().items()
    }


class TestSameBytecodeSameState:
    def test_plain_table_identical(self):
        routes = RibGenerator(n_routes=300, seed=31).generate()
        states = []
        for cls in (FrrDaemon, BirdDaemon):
            daemon = cls(asn=65001, router_id="1.1.1.1")
            feed_table(daemon, routes)
            states.append(snapshot(daemon))
        assert states[0] == states[1]

    def test_geoloc_program_identical(self):
        routes = RibGenerator(n_routes=200, seed=32).generate()
        states = []
        for cls in (FrrDaemon, BirdDaemon):
            daemon = cls(
                asn=65001,
                router_id="1.1.1.1",
                xtra={"coord": geoloc.coord_bytes(50.85, 4.35)},
            )
            daemon.attach_manifest(geoloc.build_manifest())
            feed_table(daemon, routes)
            assert daemon.vmm.fallbacks == 0
            states.append(snapshot(daemon))
        assert states[0] == states[1]

    def test_origin_validation_program_identical(self):
        routes = RibGenerator(n_routes=200, seed=33).generate()
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=33)
        counters = []
        for cls in (FrrDaemon, BirdDaemon):
            daemon = cls(asn=65001, router_id="1.1.1.1")
            daemon.attach_manifest(origin_validation.build_manifest(roas))
            feed_table(daemon, routes)
            chain = daemon.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
            counters.append(origin_validation.read_validity_counters(chain[0].state))
        assert counters[0] == counters[1]

    def test_rr_program_bytecode_is_host_independent(self):
        # The loaded program is literally the same instruction sequence.
        manifest_a = route_reflector.build_manifest()
        manifest_b = route_reflector.build_manifest()
        program_a = manifest_a.load()
        program_b = manifest_b.load()
        for code_a, code_b in zip(program_a.codes, program_b.codes):
            assert code_a.instructions == code_b.instructions

    def test_igp_filter_bytecode_identical_verdicts(self):
        # Both hosts given the same IGP answer must filter identically:
        # the feed's nexthop is not an IGP destination, so the metric
        # resolves unreachable and every eBGP export is rejected.
        from repro.igp import IgpTopology, IgpView, Spf

        topology = IgpTopology()
        topology.add_node("self", "1.1.1.1")
        spf = Spf(topology)

        routes = RibGenerator(n_routes=50, seed=34).generate()
        exported = []
        for cls in (FrrDaemon, BirdDaemon):
            daemon = cls(
                asn=65001,
                router_id="1.1.1.1",
                igp=IgpView(spf, topology, "self"),
            )
            daemon.attach_manifest(igp_filter.build_manifest(max_metric=100))
            feed_table(daemon, routes)
            sent = []
            daemon.add_neighbor("10.0.0.5", 65500, sent.append)
            daemon.session_up("10.0.0.5")
            exported.append(len(sent))
            assert daemon.stats["export_rejected"] == 50
        assert exported[0] == exported[1]
