"""Integration: the shipped JSON manifest files load and attach.

The manifest is xBGP's deployment artifact (§2.1): an operator hands
the same JSON to every router regardless of vendor.  These tests load
the files under ``examples/manifests/`` into both hosts.
"""

import pathlib

import pytest

from repro.bird import BirdDaemon
from repro.core import Manifest
from repro.frr import FrrDaemon

MANIFESTS = pathlib.Path(__file__).resolve().parents[2] / "examples" / "manifests"


@pytest.mark.parametrize("filename", ["igp_filter.json", "valley_free.json"])
@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
def test_shipped_manifest_attaches(filename, daemon_cls):
    manifest = Manifest.from_file(str(MANIFESTS / filename))
    daemon = daemon_cls(asn=65001, router_id="1.1.1.1")
    daemon.attach_manifest(manifest)
    attached = [
        name
        for point_codes in (
            daemon.vmm.attached_codes(point)
            for point in daemon.vmm._chains  # noqa: SLF001
        )
        for name in point_codes
    ]
    assert attached, "manifest attached no codes"


def test_manifest_json_roundtrip_stable():
    manifest = Manifest.from_file(str(MANIFESTS / "igp_filter.json"))
    again = Manifest.from_json(manifest.to_json())
    assert again.name == manifest.name
    assert again.codes == manifest.codes
    assert again.constants == manifest.constants
