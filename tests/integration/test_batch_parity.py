"""Integration: batched and sharded replay are invisible to routing.

The scale pipeline (``repro.scale``) must be a pure performance
transform: for every paper plugin and both host implementations, the
Loc-RIB snapshot, the effective export state seen downstream, and the
provenance-visible decision outcomes must be identical whether a feed
is replayed sequentially, through :class:`BatchProcessor`, or split by
:class:`PartitionMap` across shard daemons.

Batching legitimately collapses *transient* downstream traffic (an
announce immediately withdrawn inside one batch never reaches the
wire), so parity is asserted on final state — the advertised set, not
the withdraw event stream.  The feed deliberately contains such a
churn pair to pin that semantics down.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.aspath import AsPath
from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bgp.roa import make_roas_for_prefixes
from repro.scale import (
    BatchProcessor,
    PartitionMap,
    ShardedReplay,
    build_scale_daemon,
    normalise_snapshot,
    split_update,
)
from repro.workload import RibGenerator, build_updates, origins_of

UPSTREAM = "10.0.1.2"
DOWNSTREAM = "10.0.2.2"

FEATURES = [
    "route_reflection",
    "origin_validation",
    "valley_free",
    "geoloc",
    "closest_exit",
]

#: Two geo-tagged candidates for one prefix, so the GeoLoc filter and
#: the closest-exit decision both have something to decide.
CONTESTED = Prefix.parse("203.0.113.0/24")
EXITS = (
    (UPSTREAM, 65100, (-33.86, 151.21)),  # Sydney
    (DOWNSTREAM, 65200, (48.85, 2.35)),  # Paris — closer to the DUT
)


def make_routes():
    routes = RibGenerator(n_routes=120, seed=7).generate()
    return [spec for spec in routes if spec.prefix != CONTESTED]


def make_config(feature, implementation, routes):
    config = {
        "implementation": implementation,
        "feature": feature,
        "mode": "extension",
        "tier": "jit",
        "provenance": True,
    }
    if feature == "origin_validation":
        config["roas"] = make_roas_for_prefixes(origins_of(routes), 0.75, seed=7)
    if feature == "valley_free":
        # Provider edges lifted from real workload paths, so the plugin
        # exercises both its keep and drop branches.
        edges = set()
        for spec in routes[:6]:
            if len(spec.as_path) > 1:
                edges.add((spec.as_path[1], spec.as_path[0]))
        config["valley"] = {"up_edges": sorted(edges), "dc_ases": [65100]}
    return config


def make_feed(feature, routes):
    """Deterministic (peer, update) feed: bulk announcements, two
    geo-tagged candidates, a withdraw wave, and an announce→withdraw
    churn pair that batching will collapse."""
    session = "ibgp" if feature == "route_reflection" else "ebgp"
    sender = None if session == "ibgp" else 65100

    def announce(specs):
        return build_updates(
            specs,
            next_hop=parse_ipv4(UPSTREAM),
            session=session,
            sender_asn=sender,
            max_prefixes_per_update=8,
        )

    feed = [(UPSTREAM, update) for update in announce(routes)]
    if feature in ("geoloc", "closest_exit"):
        for address, asn, coord in EXITS:
            feed.append(
                (
                    address,
                    UpdateMessage(
                        attributes=[
                            make_origin(Origin.IGP),
                            make_as_path(AsPath.from_sequence([asn])),
                            make_next_hop(parse_ipv4(address)),
                            make_geoloc(*coord),
                        ],
                        nlri=[CONTESTED],
                    ),
                )
            )
    victims = [spec.prefix for spec in routes[::9]]
    feed.append((UPSTREAM, UpdateMessage(withdrawn=victims)))
    churn = routes[1]
    feed.extend((UPSTREAM, update) for update in announce([churn]))
    feed.append((UPSTREAM, UpdateMessage(withdrawn=[churn.prefix])))
    return feed, set(victims) | {churn.prefix}


def run_sequential(config, feed):
    daemon, collector = build_scale_daemon(config)
    for address, update in feed:
        daemon.receive_raw(address, update.encode())
    return daemon, collector


def run_batched(config, feed, batch_size=7):
    daemon, collector = build_scale_daemon(config)
    processor = BatchProcessor(daemon, batch_size=batch_size)
    for address, update in feed:
        processor.receive_raw(address, update.encode())
    processor.flush()
    assert processor.batches_flushed > 1  # batching actually engaged
    return daemon, collector


def run_sharded(config, feed, pmap):
    arms = [build_scale_daemon(config) for _ in range(pmap.shards)]
    for address, update in feed:
        for shard, part in split_update(update, pmap).items():
            arms[shard][0].receive_raw(address, part.encode())
    return arms


def provenance_best(daemon, prefixes):
    """Final RIB-visible best per prefix, straight from provenance."""
    out = {}
    for prefix in prefixes:
        best = None
        for story in daemon.provenance.stories(prefix):
            for event in story["events"]:
                if event.get("op") == "rib":
                    best = event.get("best")
        out[str(prefix)] = best
    return out


@pytest.mark.parametrize("implementation", ["frr", "bird"])
@pytest.mark.parametrize("feature", FEATURES)
def test_batched_and_sharded_replay_match_sequential(feature, implementation):
    routes = make_routes()
    config = make_config(feature, implementation, routes)
    feed, removed = make_feed(feature, routes)

    seq_daemon, seq_collector = run_sequential(config, feed)
    bat_daemon, bat_collector = run_batched(config, feed)
    pmap = PartitionMap((spec.prefix for spec in routes), 2)
    assert pmap.shards == 2
    arms = run_sharded(config, feed, pmap)

    # Loc-RIB parity, attribute-exact.
    seq_snapshot = normalise_snapshot(seq_daemon.loc_rib_snapshot())
    assert normalise_snapshot(bat_daemon.loc_rib_snapshot()) == seq_snapshot
    sharded_snapshot = {}
    for daemon, _ in arms:
        part = normalise_snapshot(daemon.loc_rib_snapshot())
        assert not (sharded_snapshot.keys() & part.keys())
        sharded_snapshot.update(part)
    assert sharded_snapshot == seq_snapshot

    # Withdrawn prefixes are gone everywhere.
    assert not ({str(p) for p in removed} & seq_snapshot.keys())

    # Effective export state: what the downstream peer ends up holding.
    advertised = set(seq_collector.prefixes)
    assert set(bat_collector.prefixes) == advertised
    sharded_advertised = set()
    for _, collector in arms:
        sharded_advertised |= collector.prefixes
    assert sharded_advertised == advertised

    # Provenance-visible decision outcomes on surviving prefixes.
    survivors = sorted(seq_snapshot)[::10]
    sample = [Prefix.parse(p) for p in survivors]
    seq_best = provenance_best(seq_daemon, sample)
    assert all(best is not None for best in seq_best.values())
    assert provenance_best(bat_daemon, sample) == seq_best
    sharded_best = {}
    for prefix in sample:
        owner = arms[pmap.shard_of(prefix)][0]
        sharded_best.update(provenance_best(owner, [prefix]))
    assert sharded_best == seq_best

    if feature == "closest_exit" and implementation == "frr":
        # The decision itself is right, not just consistent: Paris wins.
        assert seq_daemon.loc_rib.lookup(CONTESTED).source.peer_asn == 65200


@pytest.mark.parametrize("implementation", ["frr", "bird"])
def test_merged_shard_counters_match_sequential(implementation):
    """Telemetry parity across the process boundary: the merged
    per-worker execution counters of a sharded replay equal the
    counters a sequential (one-shard) replay records — the
    observability plane is as partition-invariant as the routing
    state itself."""
    routes = RibGenerator(n_routes=200, seed=19).generate()
    kwargs = dict(
        feature="route_reflection", mode="extension", batch=16, telemetry=True
    )
    sequential = ShardedReplay(
        implementation, routes, backend="inline", shards=1, **kwargs
    ).run()
    sharded = ShardedReplay(
        implementation, routes, backend="process", shards=2, **kwargs
    ).run()
    assert sharded.shards == 2

    def execution_counters(registry):
        out = {}
        for family in registry.families():
            if family.kind != "counter" or not family.name.startswith(
                "xbgp_extension"
            ):
                continue
            for values, child in family.children.items():
                out[(family.name, values)] = child.value
        return out

    expected = execution_counters(sequential.merged_registry(shard_labels=False))
    merged = execution_counters(sharded.merged_registry(shard_labels=False))
    assert expected  # instrumentation engaged at all
    assert merged == expected


@pytest.mark.parametrize("implementation", ["frr", "bird"])
def test_process_backend_matches_inline(implementation):
    """The multiprocessing boundary (pickled configs, shipped intern
    tables, merged reports) changes nothing vs the same worker code
    running in-process."""
    routes = RibGenerator(n_routes=300, seed=11).generate()
    kwargs = dict(feature="plain", mode="native", shards=2, batch=32)
    inline = ShardedReplay(
        implementation, routes, backend="inline", **kwargs
    ).run()
    process = ShardedReplay(
        implementation, routes, backend="process", **kwargs
    ).run()
    assert process.snapshot == inline.snapshot
    assert process.prefixes == inline.prefixes
    assert process.shards == inline.shards == 2
    assert len(process.snapshot) == len(routes)
