"""Integration: VMM fault tolerance (§2.1).

"While running extension codes, the VMM also monitors their execution
and stops them in case of error.  In this case, it falls back to the
default function and notifies the host implementation of the error."

These tests inject faulty bytecode into live daemons and check that
routing survives: the chain falls back to native behavior, errors are
counted and logged, and well-behaved programs keep working.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.core import Manifest, VmmConfig
from repro.frr import FrrDaemon

PREFIX = Prefix.parse("203.0.113.0/24")

#: Dereferences NULL: faults in the sandbox at run time.
CRASHING = """
u64 crash(u64 args) {
    return *(u64 *)(0);
}
"""

#: Burns its entire instruction budget in a loop.
SPINNING = """
u64 spin(u64 args) {
    u64 i = 0;
    while (1) {
        i += 1;
    }
    return i;
}
"""

#: Well-behaved: rejects one specific prefix, delegates otherwise.
SELECTIVE = """
u64 selective(u64 args) {
    u64 pfx = get_arg(ARG_PREFIX);
    if (pfx == 0) { next(); }
    u64 plen = *(u8 *)(pfx + 4);
    if (plen == 32) { return FILTER_REJECT; }
    next();
}
"""


def manifest_for(name, source, helpers=("next", "get_arg"), seq=0):
    return Manifest(
        name=name,
        codes=[
            {
                "name": name,
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": seq,
                "helpers": list(helpers),
                "source": source,
            }
        ],
    )


def feed(daemon, prefix=PREFIX):
    update = UpdateMessage(
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65100])),
            make_next_hop(parse_ipv4("10.0.0.9")),
        ],
        nlri=[prefix],
    )
    daemon.receive_message("10.0.0.9", update)


def make_daemon(daemon_cls, vmm_config=None):
    daemon = daemon_cls(asn=65001, router_id="1.1.1.1", vmm_config=vmm_config)
    daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
    daemon._established[parse_ipv4("10.0.0.9")] = True
    return daemon


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestFaultFallback:
    def test_crashing_bytecode_falls_back_to_native(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        feed(daemon)
        # The route survives: native import accepted it after the fault.
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.fallbacks == 1
        assert daemon.vmm.stats()["crasher"]["errors"] == 1
        assert any("falling back" in line for line in daemon.log_messages)

    def test_spinning_bytecode_hits_budget_and_falls_back(self, daemon_cls):
        daemon = make_daemon(daemon_cls, VmmConfig(step_budget=10_000))
        daemon.attach_manifest(manifest_for("spinner", SPINNING, helpers=()))
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["spinner"]["errors"] == 1
        assert any("budget" in line for line in daemon.log_messages)

    def test_faults_counted_per_route_not_fatal(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        for index in range(5):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        assert len(daemon.loc_rib) == 5
        assert daemon.vmm.stats()["crasher"]["errors"] == 5

    def test_healthy_code_after_faulty_code_still_runs(self, daemon_cls):
        # Chain: crasher (seq 0) then selective (seq 1).  A fault aborts
        # the whole chain to native — selective never runs on that
        # route — but the daemon keeps functioning.
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        daemon.attach_manifest(
            manifest_for("selective", SELECTIVE, seq=1)
        )
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["selective"]["executions"] == 0

    def test_selective_rejection_works_alone(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("selective", SELECTIVE))
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        feed(daemon, PREFIX)
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is None
        assert daemon.loc_rib.lookup(PREFIX) is not None

    def test_detach_restores_native_behavior(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("selective", SELECTIVE))
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is None
        daemon.vmm.detach_program("selective")
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is not None

    def test_bad_verdict_values_treated_as_accept(self, daemon_cls):
        # A bytecode returning garbage (neither ACCEPT nor REJECT):
        # hosts compare against FILTER_REJECT only, so garbage routes
        # fall through to acceptance — never a crash.
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(
            manifest_for("garbage", "u64 g(u64 args) { return 777; }", helpers=())
        )
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
