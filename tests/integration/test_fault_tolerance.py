"""Integration: VMM fault tolerance (§2.1).

"While running extension codes, the VMM also monitors their execution
and stops them in case of error.  In this case, it falls back to the
default function and notifies the host implementation of the error."

These tests inject faulty bytecode into live daemons and check that
routing survives: the chain falls back to native behavior, errors are
counted and logged, and well-behaved programs keep working.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.core import Manifest, NextRequested, VmmConfig
from repro.core.extension import NativeExtensionCode, XbgpProgram
from repro.core.insertion_points import InsertionPoint
from repro.frr import FrrDaemon
from repro.telemetry import QuarantinePolicy

PREFIX = Prefix.parse("203.0.113.0/24")

#: Dereferences NULL: faults in the sandbox at run time.
CRASHING = """
u64 crash(u64 args) {
    return *(u64 *)(0);
}
"""

#: Burns its entire instruction budget in a loop.
SPINNING = """
u64 spin(u64 args) {
    u64 i = 0;
    while (1) {
        i += 1;
    }
    return i;
}
"""

#: Well-behaved: rejects one specific prefix, delegates otherwise.
SELECTIVE = """
u64 selective(u64 args) {
    u64 pfx = get_arg(ARG_PREFIX);
    if (pfx == 0) { next(); }
    u64 plen = *(u8 *)(pfx + 4);
    if (plen == 32) { return FILTER_REJECT; }
    next();
}
"""


def manifest_for(name, source, helpers=("next", "get_arg"), seq=0):
    return Manifest(
        name=name,
        codes=[
            {
                "name": name,
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": seq,
                "helpers": list(helpers),
                "source": source,
            }
        ],
    )


def feed(daemon, prefix=PREFIX):
    update = UpdateMessage(
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence([65100])),
            make_next_hop(parse_ipv4("10.0.0.9")),
        ],
        nlri=[prefix],
    )
    daemon.receive_message("10.0.0.9", update)


def make_daemon(daemon_cls, vmm_config=None):
    daemon = daemon_cls(asn=65001, router_id="1.1.1.1", vmm_config=vmm_config)
    daemon.add_neighbor("10.0.0.9", 65100, lambda data: None)
    daemon._established[parse_ipv4("10.0.0.9")] = True
    return daemon


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestFaultFallback:
    def test_crashing_bytecode_falls_back_to_native(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        feed(daemon)
        # The route survives: native import accepted it after the fault.
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.fallbacks == 1
        assert daemon.vmm.stats()["crasher"]["errors"] == 1
        assert any("falling back" in line for line in daemon.log_messages)

    def test_spinning_bytecode_hits_budget_and_falls_back(self, daemon_cls):
        daemon = make_daemon(daemon_cls, VmmConfig(step_budget=10_000))
        daemon.attach_manifest(manifest_for("spinner", SPINNING, helpers=()))
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["spinner"]["errors"] == 1
        assert any("budget" in line for line in daemon.log_messages)

    def test_faults_counted_per_route_not_fatal(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        for index in range(5):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        assert len(daemon.loc_rib) == 5
        assert daemon.vmm.stats()["crasher"]["errors"] == 5

    def test_healthy_code_after_faulty_code_still_runs(self, daemon_cls):
        # Chain: crasher (seq 0) then selective (seq 1).  A fault aborts
        # the whole chain to native — selective never runs on that
        # route — but the daemon keeps functioning.
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        daemon.attach_manifest(
            manifest_for("selective", SELECTIVE, seq=1)
        )
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None
        assert daemon.vmm.stats()["selective"]["executions"] == 0

    def test_selective_rejection_works_alone(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("selective", SELECTIVE))
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        feed(daemon, PREFIX)
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is None
        assert daemon.loc_rib.lookup(PREFIX) is not None

    def test_detach_restores_native_behavior(self, daemon_cls):
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(manifest_for("selective", SELECTIVE))
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is None
        daemon.vmm.detach_program("selective")
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is not None

    def test_bad_verdict_values_treated_as_accept(self, daemon_cls):
        # A bytecode returning garbage (neither ACCEPT nor REJECT):
        # hosts compare against FILTER_REJECT only, so garbage routes
        # fall through to acceptance — never a crash.
        daemon = make_daemon(daemon_cls)
        daemon.attach_manifest(
            manifest_for("garbage", "u64 g(u64 args) { return 777; }", helpers=())
        )
        feed(daemon)
        assert daemon.loc_rib.lookup(PREFIX) is not None


def flaky_program(name, fail_times):
    """A native extension that errors its first ``fail_times`` runs,
    then delegates cleanly forever after."""
    calls = {"n": 0}

    def fn(ctx, host):
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise RuntimeError(f"flaky failure #{calls['n']}")
        raise NextRequested()

    code = NativeExtensionCode(name, fn, InsertionPoint.BGP_INBOUND_FILTER)
    return XbgpProgram(name, [code]), calls


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestQuarantine:
    """Circuit breaker: a faulting extension is detached from the chain
    after N consecutive errors; the chain and the native path keep the
    router converging."""

    def test_crash_looper_quarantined_rest_of_chain_keeps_running(self, daemon_cls):
        config = VmmConfig(quarantine=QuarantinePolicy(error_threshold=3))
        daemon = make_daemon(daemon_cls, config)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        daemon.attach_manifest(manifest_for("selective", SELECTIVE, seq=1))
        for index in range(6):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        # Every route converged: the first three natively (fallback
        # after the crash), the rest through the surviving chain.
        assert len(daemon.loc_rib) == 6
        stats = daemon.vmm.stats()
        # The crasher stops being invoked once quarantined.
        assert stats["crasher"]["errors"] == 3
        assert stats["crasher"]["executions"] == 3
        # Downstream of the crasher, selective only ran after the
        # quarantine unblocked the chain.
        assert stats["selective"]["executions"] == 3
        assert daemon.vmm.quarantined_codes() == ["crasher"]
        trace = daemon.vmm.telemetry.trace
        skips = trace.events("skip")
        assert len(skips) == 3
        assert all(event["reason"] == "quarantined" for event in skips)
        assert trace.last("quarantine")["to_state"] == "open"

    def test_quarantined_selective_still_rejected_by_policy_chain(self, daemon_cls):
        # Quarantining the crasher lets the selective filter downstream
        # actually enforce its policy (a fault aborts the whole chain,
        # so pre-quarantine the /32 sneaks in natively).
        config = VmmConfig(quarantine=QuarantinePolicy(error_threshold=1))
        daemon = make_daemon(daemon_cls, config)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        daemon.attach_manifest(manifest_for("selective", SELECTIVE, seq=1))
        feed(daemon, PREFIX)  # crash -> native fallback, quarantines crasher
        feed(daemon, Prefix.parse("192.0.2.1/32"))
        assert daemon.loc_rib.lookup(Prefix.parse("192.0.2.1/32")) is None
        assert daemon.loc_rib.lookup(PREFIX) is not None

    def test_native_path_keeps_converging_after_quarantine(self, daemon_cls):
        config = VmmConfig(quarantine=QuarantinePolicy(error_threshold=2))
        daemon = make_daemon(daemon_cls, config)
        daemon.attach_manifest(manifest_for("crasher", CRASHING, helpers=()))
        for index in range(5):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        assert len(daemon.loc_rib) == 5
        # Only the two pre-quarantine runs fell back; afterwards the
        # skip goes straight to the native default, not via a fault.
        assert daemon.vmm.fallbacks == 2
        assert daemon.vmm.stats()["crasher"]["errors"] == 2
        snapshot = daemon.vmm.telemetry.health.snapshot()
        assert snapshot[0]["state"] == "open"
        assert snapshot[0]["skipped"] == 3

    def test_probation_rearms_flaky_extension(self, daemon_cls):
        policy = QuarantinePolicy(
            error_threshold=2, probation_after=2, probation_successes=2
        )
        daemon = make_daemon(daemon_cls, VmmConfig(quarantine=policy))
        program, calls = flaky_program("flaky", fail_times=2)
        daemon.attach_program(program)
        for index in range(6):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        # Timeline: errors on feeds 1-2 (-> open), skip on feed 3,
        # probation trials on feeds 4-5 (clean -> closed), normal on 6.
        assert len(daemon.loc_rib) == 6
        assert calls["n"] == 5  # feed 3 is the only skipped invocation
        health = daemon.vmm.telemetry.health.state_for(
            InsertionPoint.BGP_INBOUND_FILTER.value, "flaky"
        )
        assert health.state == "closed"
        assert health.quarantine_count == 1
        states = [
            event["to_state"]
            for event in daemon.vmm.telemetry.trace.events("quarantine")
        ]
        assert states == ["open", "half_open", "closed"]
        assert daemon.vmm.quarantined_codes() == []

    def test_probation_failure_reopens_quarantine(self, daemon_cls):
        policy = QuarantinePolicy(error_threshold=2, probation_after=1)
        daemon = make_daemon(daemon_cls, VmmConfig(quarantine=policy))
        program, calls = flaky_program("hopeless", fail_times=10_000)
        daemon.attach_program(program)
        for index in range(5):
            feed(daemon, Prefix(0x0A000000 + (index << 8), 24))
        # Every probation trial fails, so the breaker keeps re-opening —
        # and every route still converges natively.
        assert len(daemon.loc_rib) == 5
        health = daemon.vmm.telemetry.health.state_for(
            InsertionPoint.BGP_INBOUND_FILTER.value, "hopeless"
        )
        assert health.state == "open"
        assert health.quarantine_count >= 2
