"""Integration: the oscillation detector against divergent policy.

True positive: Griffin & Wilfong's BAD GADGET — three ASes in a ring,
each running a BGP_DECISION extension preferring the two-hop path via
its clockwise neighbour — has no stable route assignment, and the
detector must flag the prefix (the best path keeps returning to
previously abandoned paths).  True negatives: the paper's five use
cases (route reflection, origin validation, GeoLoc, valley-free,
closest-exit) all converge, and the detector must stay silent on every
one of them.
"""

import pytest

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bgp.roa import make_roas_for_prefixes
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import bad_gadget, closest_exit, geoloc
from repro.sim import Network
from repro.sim.fabrics import build_clos
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, origins_of

PREFIX = Prefix.parse("203.0.113.0/24")

#: Event budget for the divergent runs: far beyond what any converging
#: topology of this size needs, so exhausting it means divergence.
BUDGET = 4000


def build_gadget(daemon_cls):
    """Origin AS plus a three-AS ring, every ring member running the
    BAD GADGET preference (prefer the two-hop path via the clockwise
    neighbour)."""
    network = Network()
    origin = BirdDaemon(asn=65000, router_id="10.9.0.1", provenance=True)
    network.add_router("origin", origin)
    clockwise = {"a": 65002, "b": 65003, "c": 65001}
    for index, name in enumerate(("a", "b", "c"), start=1):
        daemon = daemon_cls(
            asn=65000 + index,
            router_id=f"10.9.{index}.1",
            provenance=True,
            xtra={"prefer": bad_gadget.prefer_xtra(clockwise[name])},
        )
        daemon.attach_manifest(bad_gadget.build_manifest())
        network.add_router(name, daemon)
    # Spokes: the origin feeds each ring member directly.
    network.connect("origin", "10.8.1.1", "a", "10.8.1.2")
    network.connect("origin", "10.8.2.1", "b", "10.8.2.2")
    network.connect("origin", "10.8.3.1", "c", "10.8.3.2")
    # The ring itself.
    network.connect("a", "10.7.1.1", "b", "10.7.1.2")
    network.connect("b", "10.7.2.1", "c", "10.7.2.2")
    network.connect("c", "10.7.3.1", "a", "10.7.3.2")
    network.establish_all(max_events=200)
    origin.originate(PREFIX)
    return network


@pytest.mark.parametrize("daemon_cls", [FrrDaemon, BirdDaemon], ids=["frr", "bird"])
class TestBadGadget:
    def test_detector_flags_the_divergent_prefix(self, daemon_cls):
        network = build_gadget(daemon_cls)
        consumed = network.run(max_events=BUDGET)
        # The run exhausted its budget: the gadget never quiesces.
        assert consumed == BUDGET
        report = network.convergence_report()
        assert str(PREFIX) in report["oscillating"]
        # The churn is real, not a couple of start-up flaps.
        assert report["flaps"][str(PREFIX)] > 100
        # Every ring member individually sees the revisiting best path.
        for name in ("a", "b", "c"):
            router_report = report["routers"][name]
            assert router_report["revisits"][str(PREFIX)] >= 2, name

    def test_explain_shows_the_gadget_deciding(self, daemon_cls):
        network = build_gadget(daemon_cls)
        network.run(max_events=BUDGET)
        tracker = network.router("a").provenance
        report = tracker.explain(PREFIX)
        assert report["oscillating"] is True
        events = [
            event
            for story in report["stories"]
            for event in story["events"]
            if event["op"] == "decision"
        ]
        # The divergent verdicts are attributed to the extension by name.
        assert any(
            event["by"] == "extension:prefer_gadget" for event in events
        )


def quiescent(report):
    """True when nothing oscillates anywhere in the report."""
    return report["oscillating"] == []


class TestPaperUseCasesStaySilent:
    """The five paper use cases converge: no false positives."""

    @pytest.mark.parametrize("feature", ["route_reflection", "origin_validation"])
    def test_harness_features(self, feature):
        routes = RibGenerator(n_routes=120, seed=7).generate()
        roas = None
        if feature == "origin_validation":
            roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=7)
        harness = ConvergenceHarness(
            "frr", feature, "extension", routes, roas, provenance=True
        )
        harness.run()
        report = harness.convergence_report()
        assert report["oscillating"] == []

    def test_valley_free_fabric(self):
        network = build_clos("xbgp")
        network.enable_provenance()
        network.establish_all()
        network.router("L13").originate(Prefix.parse("192.168.13.0/24"))
        consumed = network.run(max_events=BUDGET)
        assert consumed < BUDGET  # converged well inside the budget
        report = network.convergence_report()
        assert quiescent(report)
        assert report["time_to_quiescence"] > 0.0

    def test_valley_free_survives_link_failure_without_flagging(self):
        # Failures cause legitimate best-path changes (flaps); the
        # detector must not confuse recovery with oscillation.
        network = build_clos("xbgp")
        network.enable_provenance()
        network.establish_all()
        network.router("L13").originate(Prefix.parse("192.168.13.0/24"))
        network.run()
        network.fail_link("L10", "S1")
        network.restore_link("L10", "S1")
        assert quiescent(network.convergence_report())

    def test_geoloc(self):
        network = Network()
        feeder = BirdDaemon(asn=65100, router_id="9.9.9.9", provenance=True)
        dut = FrrDaemon(
            asn=65001,
            router_id="1.1.1.1",
            xtra={"coord": geoloc.coord_bytes(50.85, 4.35)},
            provenance=True,
        )
        peer = BirdDaemon(asn=65001, router_id="2.2.2.2", provenance=True)
        dut.attach_manifest(geoloc.build_manifest(max_distance_km=20000))
        network.add_router("feeder", feeder)
        network.add_router("dut", dut)
        network.add_router("peer", peer)
        network.connect("feeder", "10.0.0.9", "dut", "10.0.0.1")
        network.connect("dut", "10.0.0.1", "peer", "10.0.0.2")
        network.establish_all()
        feeder.originate(PREFIX)
        consumed = network.run(max_events=BUDGET)
        assert consumed < BUDGET
        assert peer.loc_rib.lookup(PREFIX) is not None
        assert quiescent(network.convergence_report())

    def test_closest_exit(self):
        # A custom BGP_DECISION extension — the same insertion point the
        # gadget abuses — converging cleanly: the detector must not
        # flag custom decision logic per se, only divergence.
        daemon = FrrDaemon(
            asn=65001,
            router_id="1.1.1.1",
            xtra={"coord": geoloc.coord_bytes(50.85, 4.35)},
            provenance=True,
        )
        daemon.attach_manifest(closest_exit.build_manifest())
        for address, asn in (("10.0.0.8", 65100), ("10.0.0.9", 65200)):
            daemon.add_neighbor(address, asn, lambda data: None)
            daemon._established[parse_ipv4(address)] = True
        for address, asn, coord in (
            ("10.0.0.8", 65100, (-33.86, 151.21)),  # Sydney exit
            ("10.0.0.9", 65200, (48.85, 2.35)),  # Paris exit, closer
        ):
            daemon.receive_message(
                address,
                UpdateMessage(
                    attributes=[
                        make_origin(Origin.IGP),
                        make_as_path(AsPath.from_sequence([asn])),
                        make_next_hop(parse_ipv4(address)),
                        make_geoloc(*coord),
                    ],
                    nlri=[PREFIX],
                ),
            )
        assert daemon.loc_rib.lookup(PREFIX).source.peer_asn == 65200
        assert daemon.provenance.oscillating() == []
        # The best path moved once (Sydney -> Paris): a flap, no revisit.
        assert daemon.provenance.flap_counts() == {str(PREFIX): 1}
