#!/usr/bin/env python3
"""Programming the decision process: prefer the closest exit.

The paper's GeoLoc section says the attribute "can be used to adapt
router decisions".  This example does it on the BGP_DECISION insertion
point: a Brussels router hears the same prefix from a Sydney exit
(short AS path) and a Paris exit (longer path).  Natively, the shorter
path wins; with the closest-exit program loaded, Paris wins — and the
same bytecode makes the same choice on PyFRR and PyBIRD.
"""

from repro.bgp import Prefix
from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
from repro.bgp.aspath import AsPath
from repro.bgp.constants import Origin
from repro.bgp.messages import UpdateMessage
from repro.bgp.prefix import parse_ipv4
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import closest_exit, geoloc

PREFIX = Prefix.parse("203.0.113.0/24")


def announcement(asn, next_hop, coord, extra_hops=()):
    return UpdateMessage(
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath.from_sequence((asn,) + tuple(extra_hops))),
            make_next_hop(parse_ipv4(next_hop)),
            make_geoloc(*coord),
        ],
        nlri=[PREFIX],
    )


def run(daemon_cls, with_plugin):
    daemon = daemon_cls(
        asn=65001,
        router_id="1.1.1.1",
        xtra={"coord": geoloc.coord_bytes(50.85, 4.35)},  # Brussels
    )
    if with_plugin:
        daemon.attach_manifest(closest_exit.build_manifest())
    for address, asn in (("10.0.0.8", 65100), ("10.0.0.9", 65200)):
        daemon.add_neighbor(address, asn, lambda data: None)
        daemon._established[parse_ipv4(address)] = True
    # Sydney: 1-hop AS path.  Paris: 2 hops but 16,000 km closer.
    daemon.receive_message(
        "10.0.0.8", announcement(65100, "10.0.0.8", (-33.86, 151.21))
    )
    daemon.receive_message(
        "10.0.0.9", announcement(65200, "10.0.0.9", (48.85, 2.35), extra_hops=(65300,))
    )
    return daemon.loc_rib.lookup(PREFIX).source.peer_asn


def main() -> None:
    for daemon_cls in (FrrDaemon, BirdDaemon):
        native = run(daemon_cls, with_plugin=False)
        programmed = run(daemon_cls, with_plugin=True)
        print(
            f"{daemon_cls.__name__}: native picks AS{native} (shortest path), "
            f"closest-exit program picks AS{programmed} (Paris)"
        )
        assert native == 65100 and programmed == 65200


if __name__ == "__main__":
    main()
