#!/usr/bin/env python3
"""Live TCP interop: two daemons speak real BGP over sockets.

A PyFRR and a PyBIRD daemon establish an actual RFC 4271 session over
localhost TCP — FSM, OPEN/KEEPALIVE negotiation, UPDATE exchange — with
the GeoLoc xBGP program loaded on the PyFRR side.  The simulator is
bypassed entirely; this is the :mod:`repro.net` transport.
"""

import asyncio

from repro.bgp import Prefix
from repro.bgp.constants import AttrTypeCode
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.net import BgpSpeaker
from repro.plugins import geoloc


async def run() -> None:
    # Same AS: an iBGP session, so GeoLoc may travel.
    frr = FrrDaemon(
        asn=65001,
        router_id="1.1.1.1",
        xtra={"coord": geoloc.coord_bytes(47.3769, 8.5417)},  # Zürich
    )
    frr.attach_manifest(geoloc.build_manifest())
    bird = BirdDaemon(asn=65001, router_id="2.2.2.2")

    frr_speaker = BgpSpeaker(frr, port=11790)
    bird_speaker = BgpSpeaker(bird, port=11791)
    # Each side addresses its peer by router id.
    frr_speaker.register_neighbor("2.2.2.2", 65001)
    bird_speaker.register_neighbor("1.1.1.1", 65001)

    await bird_speaker.listen()
    session = await frr_speaker.connect("2.2.2.2", "127.0.0.1", 11791)
    await asyncio.wait_for(session.established.wait(), timeout=5)
    print("session Established over real TCP")

    # A locally-learned route with a GeoLoc attribute (stamped on
    # origination by hand here; an eBGP feeder would trigger the
    # receive bytecode instead).
    prefix = Prefix.parse("203.0.113.0/24")
    from repro.bgp.attributes import make_as_path, make_geoloc, make_next_hop, make_origin
    from repro.bgp.aspath import AsPath
    from repro.bgp.constants import Origin

    frr.originate(
        prefix,
        attributes=[
            make_origin(Origin.IGP),
            make_as_path(AsPath()),
            make_next_hop(frr.local_address),
            make_geoloc(47.3769, 8.5417),
        ],
    )

    for _ in range(50):
        await asyncio.sleep(0.1)
        route = bird.loc_rib.lookup(prefix)
        if route is not None:
            break
    assert route is not None, "route did not arrive over TCP"
    attribute = route.attribute(AttrTypeCode.GEOLOC)
    assert attribute is not None, "GeoLoc did not survive the wire"
    print(f"{prefix} received by PyBIRD over TCP with {attribute!r}")

    await frr_speaker.close()
    await bird_speaker.close()


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
