#!/usr/bin/env python3
"""§3.4: route-origin validation catching a prefix hijack.

Recreates (in miniature) the classic incident pattern the paper cites
— Pakistan Telecom announcing a more-specific of YouTube's prefix in
2008.  The victim AS originates its prefix legitimately; the hijacker
announces a more-specific.  The DUT runs the origin-validation xBGP
program with a ROA table loaded from a file (exactly like the paper's
DUT: no RPKI-Rtr session) and classifies every announcement.

The same bytecode is loaded into a PyFRR and a PyBIRD router; both
classify identically.
"""

import os
import tempfile

from repro.bgp import Prefix, Roa
from repro.bgp.roa import dump_roa_file, load_roa_file
from repro.bird import BirdDaemon
from repro.core.insertion_points import InsertionPoint
from repro.frr import FrrDaemon
from repro.plugins import origin_validation
from repro.sim import Network

VICTIM_AS = 36561  # YouTube's AS
HIJACKER_AS = 17557  # Pakistan Telecom's AS
VICTIM_PREFIX = Prefix.parse("208.65.152.0/22")
HIJACK_PREFIX = Prefix.parse("208.65.153.0/24")  # the more-specific


def validity_counters(daemon):
    chain = daemon.vmm._chains[InsertionPoint.BGP_INBOUND_FILTER]
    return origin_validation.read_validity_counters(chain[0].state)


def main() -> None:
    # The operator's ROA file: the victim may originate its /22 and
    # nothing longer than /23 — the /24 hijack cannot validate.
    with tempfile.NamedTemporaryFile("w", suffix=".roa", delete=False) as handle:
        roa_path = handle.name
    dump_roa_file(roa_path, [Roa(VICTIM_PREFIX, VICTIM_AS, max_length=23)])
    roas = load_roa_file(roa_path).all_roas()

    for daemon_cls in (FrrDaemon, BirdDaemon):
        network = Network()
        victim = BirdDaemon(asn=VICTIM_AS, router_id="1.1.1.1")
        hijacker = BirdDaemon(asn=HIJACKER_AS, router_id="2.2.2.2")
        dut = daemon_cls(asn=65001, router_id="3.3.3.3")
        dut.attach_manifest(origin_validation.build_manifest(roas))

        network.add_router("victim", victim)
        network.add_router("hijacker", hijacker)
        network.add_router("dut", dut)
        network.connect("victim", "10.0.1.1", "dut", "10.0.1.2")
        network.connect("hijacker", "10.0.2.1", "dut", "10.0.2.2")
        network.establish_all()

        victim.originate(VICTIM_PREFIX)
        hijacker.originate(HIJACK_PREFIX)
        network.run()

        counters = validity_counters(dut)
        print(f"{daemon_cls.__name__}: {counters}")
        assert counters["VALID"] == 1, "the legitimate /22 should be VALID"
        assert counters["INVALID"] == 1, "the /24 hijack should be INVALID"

        # Like the paper's experiment, validation is measurement-only:
        # the hijacked more-specific still wins longest-prefix routing —
        # the operator decides separately whether to turn counters into
        # a discarding policy.
        assert dut.loc_rib.lookup(HIJACK_PREFIX) is not None

    os.unlink(roa_path)
    print("both hosts classified the hijack INVALID from the same bytecode")


if __name__ == "__main__":
    main()
