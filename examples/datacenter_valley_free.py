#!/usr/bin/env python3
"""§3.3: BGP in the data center — valley-freedom without the AS trick.

Builds the paper's Fig. 5 Clos fabric three times:

* ``unique_as`` — every router its own AS, no protection: the fabric
  survives failures but transit traffic may take valleys;
* ``same_as``   — the classic same-AS-number trick: valleys are dead,
  but so is the fabric under the paper's double failure;
* ``xbgp``      — unique ASes + the valley-free xBGP program on every
  router (half PyFRR, half PyBIRD — one bytecode, two hosts): transit
  valleys blocked, internal destinations rescued.

The double failure is the one from the paper: links L10–S1 and L13–S2
go down, leaving L10→S2→L12→S1→L13 as the only internal path.
"""

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.sim.fabrics import build_clos


def path_of(network, router: str, prefix: Prefix):
    route = network.router(router).loc_rib.lookup(prefix)
    return str(route.as_path()) if route is not None else "UNREACHABLE"


def run_config(config: str) -> None:
    network = build_clos(config, implementation="mixed")

    # A transit provider hangs off both spines.
    transit = BirdDaemon(asn=65500, router_id="9.9.9.9")
    network.add_router("EXT", transit)
    network.connect("EXT", "10.30.0.1", "S1", "10.30.0.2")
    network.connect("EXT", "10.30.1.1", "S2", "10.30.1.2")
    network.establish_all()

    internal = Prefix.parse("192.168.13.0/24")  # attached below L13
    external = Prefix.parse("8.8.8.0/24")  # reachable via transit
    network.router("L13").originate(internal)
    transit.originate(external)
    network.run()

    print(f"--- {config}")
    print(f"  before failures: L10 -> {internal}: {path_of(network, 'L10', internal)}")

    network.fail_link("L10", "S1")
    network.fail_link("L13", "S2")
    network.fail_link("EXT", "S2")  # S2 also loses its transit uplink

    print(f"  after  failures: L10 -> {internal}: {path_of(network, 'L10', internal)}")
    print(f"                   S2  -> {external}: {path_of(network, 'S2', external)}")


def main() -> None:
    for config in ("unique_as", "same_as", "xbgp"):
        run_config(config)
    print()
    print("same_as partitions the fabric; xbgp keeps internal reachability")
    print("through the valley while still refusing transit valleys.")


if __name__ == "__main__":
    main()
