#!/usr/bin/env python3
"""§3.2: route reflection implemented entirely as extension code.

Reproduces the Fig. 3 topology (upstream → route-reflector DUT →
downstream, all iBGP) twice per host implementation: once with the
host's native RFC 4456 support, once with the host RR-unaware and the
two-bytecode xBGP program doing the reflection.  The downstream RIB —
ORIGINATOR_ID and CLUSTER_LIST included — must be identical.

Then it runs a small timed comparison (a miniature of Fig. 4's blue
boxes; `benchmarks/test_fig4_route_reflection.py` is the full one).
"""

import statistics
import time

from repro.bgp import Prefix
from repro.bgp.roa import make_roas_for_prefixes
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, origins_of


def main() -> None:
    generator = RibGenerator(n_routes=1500, seed=20200604)
    routes = generator.generate()

    for implementation in ("frr", "bird"):
        # Correctness: the reflected tables must match attribute-for-
        # attribute between native and extension mode.
        snapshots = {}
        for mode in ("native", "extension"):
            harness = ConvergenceHarness(implementation, "route_reflection", mode, routes)
            harness.run()
            snapshots[mode] = harness.collector.prefixes
        assert snapshots["native"] == snapshots["extension"]
        print(
            f"{implementation}: native and extension reflect the same "
            f"{len(snapshots['native'])} prefixes"
        )

        # A quick timing taste (3 runs; the benchmark does 15).
        impacts = []
        for _ in range(3):
            native = ConvergenceHarness(
                implementation, "route_reflection", "native", routes
            ).run()
            extension = ConvergenceHarness(
                implementation, "route_reflection", "extension", routes
            ).run()
            impacts.append((extension - native) / native * 100)
        print(
            f"{implementation}: extension impact ≈ "
            f"{statistics.median(impacts):+.1f}% (median of 3 runs, eBPF-JIT engine)"
        )


if __name__ == "__main__":
    main()
