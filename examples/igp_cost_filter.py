#!/usr/bin/env python3
"""§3.1: export filtering on IGP cost — the transatlantic scenario.

An ISP has routers in London, Amsterdam, Frankfurt and New York.  The
transatlantic links carry IGP cost 1000.  The operator wants European
routes advertised to European eBGP peers only while they are actually
reachable inside Europe: when both intra-European links to London
fail, London's routes suddenly resolve across the Atlantic and must
stop being advertised — something ingress-assigned communities cannot
express (they never change when the IGP distance does).

Listing 1 of the paper, attached to Frankfurt's BGP_OUTBOUND_FILTER,
does exactly that.
"""

from repro.bgp import Prefix
from repro.bird import BirdDaemon
from repro.igp import IgpTopology, IgpView, Spf
from repro.plugins import igp_filter
from repro.sim import Network


def build_igp() -> IgpTopology:
    topology = IgpTopology()
    topology.add_node("london", "10.1.0.1")
    topology.add_node("amsterdam", "10.1.0.2")
    topology.add_node("frankfurt", "10.1.0.3")
    topology.add_node("newyork", "10.1.0.4")
    topology.add_link("london", "amsterdam", 10)
    topology.add_link("london", "frankfurt", 10)
    topology.add_link("amsterdam", "frankfurt", 5)
    # Transatlantic links: discouraged with cost 1000 (paper's knob).
    topology.add_link("london", "newyork", 1000)
    topology.add_link("amsterdam", "newyork", 1000)
    return topology


def main() -> None:
    topology = build_igp()
    spf = Spf(topology)

    network = Network()
    # Frankfurt is the router under scrutiny: it exports to an eBGP peer.
    frankfurt = BirdDaemon(
        asn=65001,
        router_id="10.1.0.3",
        igp=IgpView(spf, topology, "frankfurt"),
        nexthop_self=False,  # keep the iBGP nexthop so IGP cost matters
    )
    frankfurt.attach_manifest(igp_filter.build_manifest(max_metric=500))

    london = BirdDaemon(asn=65001, router_id="10.1.0.1")
    peer = BirdDaemon(asn=65200, router_id="9.9.9.9")

    network.add_router("london", london)
    network.add_router("frankfurt", frankfurt)
    network.add_router("peer", peer)
    network.connect("london", "10.1.0.1", "frankfurt", "10.1.0.3")
    network.connect("frankfurt", "10.1.0.30", "peer", "9.9.9.9")
    network.establish_all()

    prefix = Prefix.parse("198.18.0.0/16")
    london.originate(prefix, next_hop=topology.loopback("london"))
    network.run()

    assert peer.loc_rib.lookup(prefix) is not None
    print(
        "healthy IGP: Frankfurt->London metric =",
        frankfurt.igp.metric_to(topology.loopback("london")),
        "-> route exported to the eBGP peer",
    )

    # Both intra-European links to London fail.
    topology.remove_link("london", "frankfurt")
    topology.remove_link("london", "amsterdam")
    spf.invalidate()
    # Frankfurt re-evaluates its exports (a real daemon would do this on
    # the IGP event; we poke the prefix).
    frankfurt._export_prefix(prefix)
    network.run()

    assert peer.loc_rib.lookup(prefix) is None
    print(
        "after the failures: metric =",
        frankfurt.igp.metric_to(topology.loopback("london")),
        "(via New York) -> route withdrawn from the eBGP peer",
    )
    print("A community-based filter would still be advertising it.")


if __name__ == "__main__":
    main()
