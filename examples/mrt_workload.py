#!/usr/bin/env python3
"""Replaying archived tables: MRT in, experiment out.

The paper feeds its DUT a RIPE RIS snapshot; RIS snapshots are MRT
TABLE_DUMP_V2 files.  This example generates a synthetic table, writes
it in the real MRT format, reads it back, and replays it through the
Fig. 3 harness — the exact same flow works with a genuine RIS dump
dropped in place of the generated file.
"""

import tempfile

from repro.bgp.prefix import parse_ipv4
from repro.mrt import MrtPeer, RibEntry, read_table, write_table
from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, build_updates, routes_from_mrt


def main() -> None:
    generator = RibGenerator(n_routes=2000, seed=20200604)
    routes = generator.generate()
    peer_address = parse_ipv4("10.0.0.9")

    with tempfile.NamedTemporaryFile(suffix=".mrt", delete=False) as handle:
        path = handle.name
        updates = build_updates(routes, next_hop=peer_address, session="ebgp", sender_asn=65100)
        entries = [
            RibEntry(prefix, 0, 1_591_228_800, update.attributes)
            for update in updates
            for prefix in update.nlri
        ]
        write_table(handle, [MrtPeer(peer_address, peer_address, 65100)], entries)
    print(f"wrote {len(entries)} RIB rows to {path} (TABLE_DUMP_V2)")

    with open(path, "rb") as handle:
        peers, read_entries = read_table(handle)
    print(f"read back {len(read_entries)} rows from peer AS{peers[0].asn}")

    replay = routes_from_mrt(path)
    harness = ConvergenceHarness("frr", "plain", "native", replay)
    elapsed = harness.run()
    print(
        f"replayed through the Fig. 3 harness: {len(harness.collector)} prefixes "
        f"converged in {elapsed * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
