#!/usr/bin/env python3
"""Quickstart: the paper's GeoLoc use case in thirty lines.

One eBGP feeder announces a route to an xBGP-enabled PyFRR router
carrying the four-bytecode GeoLoc program (Fig. 2 of the paper); the
route is tagged with the router's coordinates and the new attribute
travels over iBGP to a PyBIRD neighbor — the *same* bytecode would run
on a PyBIRD DUT (swap the classes and see for yourself).
"""

from repro.bgp import Prefix
from repro.bgp.attributes import decode_geoloc
from repro.bgp.constants import AttrTypeCode
from repro.bird import BirdDaemon
from repro.frr import FrrDaemon
from repro.plugins import geoloc
from repro.sim import Network


def main() -> None:
    network = Network()

    feeder = BirdDaemon(asn=65100, router_id="9.9.9.9")
    dut = FrrDaemon(
        asn=65001,
        router_id="1.1.1.1",
        # The router knows where it is: Brussels.
        xtra={"coord": geoloc.coord_bytes(50.8503, 4.3517)},
    )
    ibgp_peer = BirdDaemon(asn=65001, router_id="2.2.2.2")

    # Load the GeoLoc xBGP program (4 bytecodes on 4 insertion points).
    dut.attach_manifest(geoloc.build_manifest(max_distance_km=20000))

    network.add_router("feeder", feeder)
    network.add_router("dut", dut)
    network.add_router("peer", ibgp_peer)
    network.connect("feeder", "10.0.0.9", "dut", "10.0.0.1")
    network.connect("dut", "10.0.0.1", "peer", "10.0.0.2")
    network.establish_all()

    prefix = Prefix.parse("203.0.113.0/24")
    feeder.originate(prefix)
    network.run()

    route = ibgp_peer.loc_rib.lookup(prefix)
    assert route is not None, "route did not propagate"
    attribute = route.attribute(AttrTypeCode.GEOLOC)
    assert attribute is not None, "GeoLoc attribute missing at the iBGP peer"
    latitude, longitude = decode_geoloc(attribute)
    print(f"{prefix} learned with GeoLoc ({latitude:.4f}, {longitude:.4f})")
    print("extension executions:", dut.vmm.stats())


if __name__ == "__main__":
    main()
